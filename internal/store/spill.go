// Spill files move a partition's series columns from RAM to disk so
// fleet size is bounded by disk, not memory. A spill file holds one
// model's full series in a single flat, feature-major blob, written
// once and served read-only (memory-mapped where the platform allows).
//
// Layout (all integers little-endian):
//
//	[ 8] magic "REPROSP1"
//	[..] blob: float64 values, feature-major. For each feature f (in
//	     index order): for each drive d (in index order): that drive's
//	     series for days 0..LastDay_d. Every feature column therefore
//	     spans the same T = Σ_d (LastDay_d+1) cells, and the value for
//	     (f, d, day) lives at blob[f*T + off_d + day], with off the
//	     prefix sum of per-drive day counts.
//	[..] index: JSON (spillIndex)
//	[ 8] index byte length
//	[ 8] magic "REPROSP1"
//
// Feature-major order means a one-day fleet file is exactly the
// scoring matrix: each feature column is T contiguous float64s that a
// compiled flat model consumes with no gather step.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/dataset"
	"repro/internal/smart"
)

const spillMagic = "REPROSP1"

// ErrBadSpill indicates a spill file that failed structural validation.
var ErrBadSpill = errors.New("store: bad spill file")

// spillIndex is the JSON footer describing the blob geometry.
type spillIndex struct {
	Model    int             `json:"model"`
	Days     int             `json:"days"` // day span the file covers
	Features []string        `json:"features"`
	Drives   []spillDriveIdx `json:"drives"`
}

type spillDriveIdx struct {
	ID      int `json:"id"`
	FailDay int `json:"fail_day"`
	LastDay int `json:"last_day"`
}

// spillFile is an opened, validated spill file.
type spillFile struct {
	data   []byte          // whole file (mmap or aligned heap copy)
	mapped bool            // data must be munmapped on close
	blob   []float64       // feature-major cells; len == len(feats)*total
	feats  []smart.Feature // index order == blob column order
	offs   []int64         // per-drive prefix offsets, len == nDrives+1
	total  int64           // cells per feature column
	days   int             // day span the file covers
}

// SpillPath returns the spill file path for a model under dir.
func SpillPath(dir string, m smart.ModelID) string {
	return filepath.Join(dir, m.String()+".spill")
}

// expectedLastDay is the last observed day a well-formed source reports
// for the ref: its failure day, or the final dataset day if it survives.
func expectedLastDay(ref dataset.DriveRef, days int) int {
	last := days - 1
	if ref.Failed() && ref.FailDay < last {
		last = ref.FailDay
	}
	return last
}

// WriteSpill streams model m's drives from src into dir's spill file,
// fetching series with the given parallelism but holding only O(workers)
// drive series in memory at any moment. The file is written to a temp
// name and renamed into place, so readers never observe a partial file.
// It returns the final path.
func WriteSpill(dir string, src dataset.Source, m smart.ModelID, workers int) (string, error) {
	refs := src.DrivesOf(m)
	if len(refs) == 0 {
		return "", fmt.Errorf("store: model %v has no drives to spill", m)
	}
	days := src.Days()
	if days <= 0 {
		return "", fmt.Errorf("store: source spans %d days", days)
	}
	// Probe the first drive for the feature set; every drive must match.
	probe, _, err := src.Series(refs[0])
	if err != nil {
		return "", fmt.Errorf("store: spill probe drive %d: %w", refs[0].ID, err)
	}
	feats := sortedFeatures(probe)
	nDays := make([]int, len(refs))
	for i, r := range refs {
		nDays[i] = expectedLastDay(r, days) + 1
	}
	path := SpillPath(dir, m)
	fetch := func(i int) (map[smart.Feature][]float64, error) {
		cols, lastDay, err := src.Series(refs[i])
		if err != nil {
			return nil, err
		}
		if lastDay+1 != nDays[i] {
			return nil, fmt.Errorf("drive %d spans %d days, inventory implies %d", refs[i].ID, lastDay+1, nDays[i])
		}
		return cols, nil
	}
	if err := writeSpillFile(path, m, days, refs, feats, nDays, workers, fetch); err != nil {
		return "", err
	}
	return path, nil
}

// writeSpillFile writes one spill file from a per-drive column fetcher.
// Drive i's columns must each span exactly nDays[i] values and cover
// exactly the feats set.
func writeSpillFile(path string, m smart.ModelID, days int, refs []dataset.DriveRef,
	feats []smart.Feature, nDays []int, workers int,
	fetch func(i int) (map[smart.Feature][]float64, error)) error {

	offs := make([]int64, len(refs)+1)
	for i, nd := range nDays {
		if nd <= 0 || nd > days {
			return fmt.Errorf("store: spill drive %d spans %d days of %d", refs[i].ID, nd, days)
		}
		offs[i+1] = offs[i] + int64(nd)
	}
	total := offs[len(refs)]

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return fmt.Errorf("store: spill: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
		}
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if _, err := f.WriteAt([]byte(spillMagic), 0); err != nil {
		return fmt.Errorf("store: spill: %w", err)
	}

	// Each drive's cells occupy a fixed region per feature column, so
	// workers stream independent positioned writes with no coordination.
	writeDrive := func(i int, buf []byte) ([]byte, error) {
		cols, err := fetch(i)
		if err != nil {
			return buf, err
		}
		if len(cols) != len(feats) {
			return buf, fmt.Errorf("drive %d has %d features, file has %d", refs[i].ID, len(cols), len(feats))
		}
		nd := nDays[i]
		if cap(buf) < nd*8 {
			buf = make([]byte, nd*8)
		}
		buf = buf[:nd*8]
		for fi, ft := range feats {
			col, ok := cols[ft]
			if !ok || len(col) != nd {
				return buf, fmt.Errorf("drive %d feature %v has %d days, want %d", refs[i].ID, ft, len(col), nd)
			}
			for j, v := range col {
				binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(v))
			}
			at := int64(len(spillMagic)) + (int64(fi)*total+offs[i])*8
			if _, err := f.WriteAt(buf, at); err != nil {
				return buf, err
			}
		}
		return buf, nil
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(refs) {
		workers = len(refs)
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []byte
			for errs[w] == nil {
				i := int(next.Add(1)) - 1
				if i >= len(refs) {
					return
				}
				buf, errs[w] = writeDrive(i, buf)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("store: spill: %w", err)
		}
	}

	idx := spillIndex{Model: int(m), Days: days, Features: make([]string, len(feats))}
	for i, ft := range feats {
		idx.Features[i] = ft.String()
	}
	for _, r := range refs {
		idx.Drives = append(idx.Drives, spillDriveIdx{ID: r.ID, FailDay: r.FailDay, LastDay: 0})
	}
	for i := range idx.Drives {
		idx.Drives[i].LastDay = nDays[i] - 1
	}
	enc, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("store: spill index: %w", err)
	}
	foot := make([]byte, len(enc)+16)
	copy(foot, enc)
	binary.LittleEndian.PutUint64(foot[len(enc):], uint64(len(enc)))
	copy(foot[len(enc)+8:], spillMagic)
	blobEnd := int64(len(spillMagic)) + total*int64(len(feats))*8
	if _, err := f.WriteAt(foot, blobEnd); err != nil {
		return fmt.Errorf("store: spill: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: spill: %w", err)
	}
	// CreateTemp makes 0600 files; match os.Create's permissions.
	if err := f.Chmod(0o644); err != nil {
		return fmt.Errorf("store: spill: %w", err)
	}
	if err := f.Close(); err != nil {
		f = nil
		return fmt.Errorf("store: spill: %w", err)
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: spill: %w", err)
	}
	tmp = ""
	return nil
}

// openSpill opens and validates a spill file for model m. The error
// wraps os.ErrNotExist when there is no file, letting callers fall back
// to the upstream source.
func openSpill(path string, m smart.ModelID) (*spillFile, []dataset.DriveRef, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	size := st.Size()
	if size < int64(2*len(spillMagic)+8+2) {
		f.Close()
		return nil, nil, fmt.Errorf("%w: %s: %d bytes", ErrBadSpill, path, size)
	}
	data, mapped, err := mapFile(f, size)
	f.Close() // the mapping (or copy) outlives the descriptor
	if err != nil {
		return nil, nil, fmt.Errorf("store: spill %s: %w", path, err)
	}
	sf, refs, err := parseSpill(data, mapped, m)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, nil, fmt.Errorf("%w: %s: %v", ErrBadSpill, path, err)
	}
	return sf, refs, nil
}

func parseSpill(data []byte, mapped bool, m smart.ModelID) (*spillFile, []dataset.DriveRef, error) {
	size := int64(len(data))
	if string(data[:8]) != spillMagic || string(data[size-8:]) != spillMagic {
		return nil, nil, errors.New("magic mismatch")
	}
	idxLen := int64(binary.LittleEndian.Uint64(data[size-16 : size-8]))
	idxStart := size - 16 - idxLen
	if idxLen <= 0 || idxStart < 8 {
		return nil, nil, fmt.Errorf("index length %d", idxLen)
	}
	var idx spillIndex
	if err := json.Unmarshal(data[idxStart:idxStart+idxLen], &idx); err != nil {
		return nil, nil, fmt.Errorf("index: %v", err)
	}
	if idx.Model != int(m) {
		return nil, nil, fmt.Errorf("file holds model %v, want %v", smart.ModelID(idx.Model), m)
	}
	if idx.Days <= 0 || len(idx.Features) == 0 || len(idx.Drives) == 0 {
		return nil, nil, fmt.Errorf("%d days, %d features, %d drives", idx.Days, len(idx.Features), len(idx.Drives))
	}
	feats := make([]smart.Feature, len(idx.Features))
	for i, name := range idx.Features {
		ft, err := smart.ParseFeature(name)
		if err != nil {
			return nil, nil, fmt.Errorf("feature %q: %v", name, err)
		}
		feats[i] = ft
	}
	offs := make([]int64, len(idx.Drives)+1)
	refs := make([]dataset.DriveRef, len(idx.Drives))
	for i, d := range idx.Drives {
		if d.LastDay < 0 || d.LastDay >= idx.Days {
			return nil, nil, fmt.Errorf("drive %d last day %d of %d", d.ID, d.LastDay, idx.Days)
		}
		offs[i+1] = offs[i] + int64(d.LastDay+1)
		refs[i] = dataset.DriveRef{ID: d.ID, Model: m, FailDay: d.FailDay}
	}
	total := offs[len(idx.Drives)]
	blobBytes := total * int64(len(feats)) * 8
	if idxStart != 8+blobBytes {
		return nil, nil, fmt.Errorf("blob spans %d bytes, index starts at %d", blobBytes, idxStart)
	}
	return &spillFile{
		data:   data,
		mapped: mapped,
		blob:   floatView(data[8 : 8+blobBytes]),
		feats:  feats,
		offs:   offs,
		total:  total,
		days:   idx.Days,
	}, refs, nil
}

func (sf *spillFile) close() error {
	if sf.mapped {
		return unmapFile(sf.data)
	}
	return nil
}

// column returns feature fi's full contiguous cell column.
func (sf *spillFile) column(fi int) []float64 {
	lo := int64(fi) * sf.total
	hi := lo + sf.total
	return sf.blob[lo:hi:hi]
}

// series returns drive di's columns truncated to the horizon, aliasing
// the file's blob (zero copy).
func (sf *spillFile) series(di, horizon int) (map[smart.Feature][]float64, int, error) {
	base := sf.offs[di]
	lastDay := int(sf.offs[di+1]-base) - 1
	if lastDay > horizon-1 {
		lastDay = horizon - 1
	}
	if lastDay < 0 {
		return nil, 0, fmt.Errorf("store: spilled drive has no days within horizon %d", horizon)
	}
	n := int64(lastDay + 1)
	out := make(map[smart.Feature][]float64, len(sf.feats))
	for fi, ft := range sf.feats {
		lo := int64(fi)*sf.total + base
		out[ft] = sf.blob[lo : lo+n : lo+n]
	}
	return out, lastDay, nil
}

// sortedFeatures returns the map's features in canonical (name) order.
func sortedFeatures(cols map[smart.Feature][]float64) []smart.Feature {
	feats := make([]smart.Feature, 0, len(cols))
	for ft := range cols {
		feats = append(feats, ft)
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i].String() < feats[j].String() })
	return feats
}

// nativeLE reports whether the host is little-endian, which lets the
// blob be reinterpreted in place instead of decode-copied.
var nativeLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// floatView reinterprets the little-endian byte blob as float64s.
// b is 8-byte aligned by construction (page-aligned mmap, or the
// word-aligned buffer from readAligned, plus the 8-byte magic).
func floatView(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if nativeLE {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// readAligned reads the whole file into a word-aligned heap buffer; the
// fallback when the platform has no mmap.
func readAligned(f *os.File, size int64) ([]byte, error) {
	words := make([]uint64, (size+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, err
	}
	return b, nil
}

package store

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simulate"
	"repro/internal/smart"
)

// countingSource wraps a Source and counts Series calls, independent
// of the store's own counters.
type countingSource struct {
	dataset.Source
	calls map[int]int
}

func newCountingSource(src dataset.Source) *countingSource {
	return &countingSource{Source: src, calls: make(map[int]int)}
}

func (c *countingSource) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	c.calls[ref.ID]++
	return c.Source.Series(ref)
}

func testFleet(t *testing.T) dataset.Source {
	t.Helper()
	f, err := simulate.New(simulate.Config{TotalDrives: 200, Days: 120, Seed: 11, AFRScale: 5})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetSource{Fleet: f}
}

func TestAppendOnlyIngest(t *testing.T) {
	src := newCountingSource(testFleet(t))
	st := Open(src, Options{Workers: 1})

	if err := st.AppendThrough(59); err != nil {
		t.Fatal(err)
	}
	if st.Horizon() != 60 {
		t.Fatalf("horizon = %d, want 60", st.Horizon())
	}
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	c1 := st.Counters()
	if c1.SeriesFetches == 0 || c1.DaysIngested == 0 {
		t.Fatalf("nothing ingested after Track: %+v", c1)
	}

	// Phase advance: only the new days are ingested, and no drive is
	// re-fetched from the upstream source.
	if err := st.AppendThrough(99); err != nil {
		t.Fatal(err)
	}
	c2 := st.Counters()
	if c2.SeriesFetches != c1.SeriesFetches {
		t.Errorf("phase advance re-fetched upstream series: %d -> %d", c1.SeriesFetches, c2.SeriesFetches)
	}
	if c2.DaysIngested <= c1.DaysIngested {
		t.Errorf("no new days ingested on advance: %d -> %d", c1.DaysIngested, c2.DaysIngested)
	}
	for id, n := range src.calls {
		if n != 1 {
			t.Errorf("drive %d fetched %d times from upstream", id, n)
		}
	}

	// Re-appending an already-visible day is a no-op.
	if err := st.AppendThrough(50); err != nil {
		t.Fatal(err)
	}
	if c3 := st.Counters(); c3.DaysIngested != c2.DaysIngested || c3.SeriesFetches != c2.SeriesFetches {
		t.Errorf("backwards append did work: %+v -> %+v", c2, c3)
	}
}

func TestAppendDayAdvancesOneDay(t *testing.T) {
	st := Open(testFleet(t), Options{Workers: 1})
	if err := st.AppendDay(); err != nil {
		t.Fatal(err)
	}
	if st.Horizon() != 1 {
		t.Fatalf("horizon after first AppendDay = %d", st.Horizon())
	}
	if err := st.AppendDay(); err != nil {
		t.Fatal(err)
	}
	if st.Horizon() != 2 {
		t.Fatalf("horizon after second AppendDay = %d", st.Horizon())
	}
}

func TestAppendThroughRejectsNegative(t *testing.T) {
	st := Open(testFleet(t), Options{})
	if err := st.AppendThrough(-1); err == nil {
		t.Error("negative day should fail")
	}
}

// TestSnapshotParity verifies a full-horizon snapshot is
// indistinguishable from the raw source: same inventory, same series
// values, same last days.
func TestSnapshotParity(t *testing.T) {
	src := testFleet(t)
	st := Open(src, Options{})
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Days() != src.Days() {
		t.Fatalf("snapshot days = %d, source days = %d", snap.Days(), src.Days())
	}
	refs := snap.DrivesOf(smart.MC1)
	if !reflect.DeepEqual(refs, src.DrivesOf(smart.MC1)) {
		t.Fatal("drive inventories differ")
	}
	for _, ref := range refs[:10] {
		wantCols, wantLast, err := src.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		gotCols, gotLast, err := snap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != wantLast {
			t.Fatalf("drive %d lastDay = %d, want %d", ref.ID, gotLast, wantLast)
		}
		if !reflect.DeepEqual(gotCols, wantCols) {
			t.Fatalf("drive %d series differ through the store", ref.ID)
		}
	}
}

// TestSnapshotHorizonTruncation verifies an early snapshot keeps
// serving its shorter view after the store advances past it.
func TestSnapshotHorizonTruncation(t *testing.T) {
	src := testFleet(t)
	st := Open(src, Options{})
	if err := st.AppendThrough(49); err != nil {
		t.Fatal(err)
	}
	early := st.Snapshot()
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	late := st.Snapshot()

	if early.Days() != 50 || late.Days() != src.Days() {
		t.Fatalf("days: early %d, late %d", early.Days(), late.Days())
	}
	ref := src.DrivesOf(smart.MC1)[0]
	cols, last, err := early.Series(ref)
	if err != nil {
		t.Fatal(err)
	}
	if last != 49 {
		t.Fatalf("early lastDay = %d, want 49", last)
	}
	for ft, col := range cols {
		if len(col) != 50 {
			t.Fatalf("early %v column has %d days, want 50", ft, len(col))
		}
	}
	// The late snapshot sees the same prefix values.
	lateCols, _, err := late.Series(ref)
	if err != nil {
		t.Fatal(err)
	}
	for ft, col := range cols {
		if !reflect.DeepEqual(col, lateCols[ft][:50:50]) {
			t.Fatalf("prefix of %v changed between snapshots", ft)
		}
	}
}

// TestRefIndexCached verifies the per-model drive-ref index is built
// once and shared across snapshots.
func TestRefIndexCached(t *testing.T) {
	src := testFleet(t)
	st := Open(src, Options{})
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	a := st.Snapshot().RefIndex(smart.MC1)
	b := st.Snapshot().RefIndex(smart.MC1)
	if a == nil || len(a) == 0 {
		t.Fatal("empty ref index")
	}
	if reflect.ValueOf(a).Pointer() != reflect.ValueOf(b).Pointer() {
		t.Error("ref index rebuilt per snapshot instead of cached")
	}
	for _, r := range src.DrivesOf(smart.MC1) {
		if a[r.ID] != r {
			t.Fatalf("ref index mismatch for drive %d", r.ID)
		}
	}
}

// TestLazyTrackOnAccess verifies an untracked model is tracked and
// ingested on first snapshot access.
func TestLazyTrackOnAccess(t *testing.T) {
	src := testFleet(t)
	st := Open(src, Options{})
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	refs := snap.DrivesOf(smart.MB1)
	if len(refs) == 0 {
		t.Fatal("no MB1 drives via lazy tracking")
	}
	if _, _, err := snap.Series(refs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerInvariantIngest verifies parallel ingest produces the same
// counters and data as serial ingest.
func TestWorkerInvariantIngest(t *testing.T) {
	src := testFleet(t)
	run := func(workers int) (Counters, map[smart.Feature][]float64) {
		st := Open(src, Options{Workers: workers})
		if err := st.Track(smart.MC1); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendThrough(src.Days() - 1); err != nil {
			t.Fatal(err)
		}
		snap := st.Snapshot()
		cols, _, err := snap.Series(snap.DrivesOf(smart.MC1)[3])
		if err != nil {
			t.Fatal(err)
		}
		c := st.Counters()
		c.Snapshots = 0 // not ingest work
		return c, cols
	}
	c1, cols1 := run(1)
	c4, cols4 := run(4)
	if c1 != c4 {
		t.Errorf("counters differ: serial %+v, parallel %+v", c1, c4)
	}
	if !reflect.DeepEqual(cols1, cols4) {
		t.Error("ingested series differ between worker counts")
	}
}

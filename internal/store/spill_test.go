package store

import (
	"math"
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/smart"
)

func requireSeriesBitEqual(t *testing.T, want, got map[smart.Feature][]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d features vs %d", label, len(want), len(got))
	}
	for ft, w := range want {
		g, ok := got[ft]
		if !ok {
			t.Fatalf("%s: missing feature %v", label, ft)
		}
		if len(w) != len(g) {
			t.Fatalf("%s: feature %v: %d days vs %d", label, ft, len(w), len(g))
		}
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
				t.Fatalf("%s: feature %v day %d: %v vs %v", label, ft, i, w[i], g[i])
			}
		}
	}
}

// TestSpillRoundTrip writes a spill file, reopens it through a fresh
// store, and checks every drive's series is bit-identical to the
// upstream source — with zero upstream fetches from the spilled store.
func TestSpillRoundTrip(t *testing.T) {
	src := testFleet(t)
	dir := t.TempDir()
	if _, err := WriteSpill(dir, src, smart.MC1, 3); err != nil {
		t.Fatal(err)
	}

	counting := newCountingSource(src)
	st := Open(counting, Options{Workers: 2, SpillDir: dir})
	defer st.Close()
	days := src.Days()
	if err := st.AppendThrough(days - 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if n := len(counting.calls); n != 0 {
		t.Fatalf("spill-backed track fetched %d drives upstream", n)
	}

	snap := st.Snapshot()
	refs := snap.DrivesOf(smart.MC1)
	srcRefs := src.DrivesOf(smart.MC1)
	if len(refs) != len(srcRefs) {
		t.Fatalf("inventory: %d refs vs %d", len(refs), len(srcRefs))
	}
	var cells int64
	for i, ref := range refs {
		if ref != srcRefs[i] {
			t.Fatalf("ref %d: %+v vs %+v", i, ref, srcRefs[i])
		}
		want, wantLast, err := src.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, gotLast, err := snap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != wantLast {
			t.Fatalf("drive %d last day %d vs %d", ref.ID, gotLast, wantLast)
		}
		requireSeriesBitEqual(t, want, got, "spill round-trip")
		cells += int64(wantLast + 1)
	}
	c := st.Counters()
	if c.SeriesFetches != 0 {
		t.Errorf("spilled store made %d upstream fetches", c.SeriesFetches)
	}
	if c.DaysIngested != cells {
		t.Errorf("DaysIngested = %d, want %d", c.DaysIngested, cells)
	}
}

// TestStoreSpill ingests in memory, spills, and checks snapshots taken
// before the spill keep serving bit-identical data afterwards.
func TestStoreSpill(t *testing.T) {
	src := testFleet(t)
	dir := t.TempDir()
	st := Open(src, Options{Workers: 2, SpillDir: dir})
	defer st.Close()
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	refs := snap.DrivesOf(smart.MC1)
	before := make(map[int]map[smart.Feature][]float64, len(refs))
	for _, ref := range refs {
		cols, _, err := snap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		before[ref.ID] = cols
	}
	cBefore := st.Counters()

	if err := st.Spill(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SpillPath(dir, smart.MC1)); err != nil {
		t.Fatalf("spill file: %v", err)
	}
	for _, ref := range refs {
		cols, _, err := snap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		requireSeriesBitEqual(t, before[ref.ID], cols, "post-spill")
	}
	// Spilling must not re-fetch or re-account anything.
	cAfter := st.Counters()
	if cAfter.SeriesFetches != cBefore.SeriesFetches || cAfter.DaysIngested != cBefore.DaysIngested {
		t.Errorf("spill changed ingest counters: %+v -> %+v", cBefore, cAfter)
	}
}

// TestDayColumns checks the per-day scoring matrix against Series on
// both the in-memory and the spill-backed paths, including the
// zero-copy single-day fast path.
func TestDayColumns(t *testing.T) {
	src := testFleet(t)
	day := 40

	check := func(t *testing.T, snap *Snapshot) {
		feats, cols, alive, err := snap.DayColumns(smart.MC1, day)
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) == 0 || len(cols) != len(feats) {
			t.Fatalf("%d features, %d columns", len(feats), len(cols))
		}
		wantAlive := 0
		for _, ref := range snap.DrivesOf(smart.MC1) {
			series, lastDay, err := snap.Series(ref)
			if err != nil {
				t.Fatal(err)
			}
			if lastDay < day {
				continue
			}
			if alive[wantAlive] != ref {
				t.Fatalf("alive[%d] = %+v, want %+v", wantAlive, alive[wantAlive], ref)
			}
			for fi, ft := range feats {
				w := series[ft][day]
				g := cols[fi][wantAlive]
				if math.Float64bits(w) != math.Float64bits(g) {
					t.Fatalf("drive %d feature %v day %d: %v vs %v", ref.ID, ft, day, w, g)
				}
			}
			wantAlive++
		}
		if wantAlive != len(alive) {
			t.Fatalf("%d alive drives, want %d", len(alive), wantAlive)
		}
	}

	t.Run("memory", func(t *testing.T) {
		st := Open(src, Options{Workers: 2})
		if err := st.AppendThrough(src.Days() - 1); err != nil {
			t.Fatal(err)
		}
		check(t, st.Snapshot())
	})
	t.Run("spilled", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := WriteSpill(dir, src, smart.MC1, 2); err != nil {
			t.Fatal(err)
		}
		st := Open(src, Options{Workers: 2, SpillDir: dir})
		defer st.Close()
		if err := st.AppendThrough(src.Days() - 1); err != nil {
			t.Fatal(err)
		}
		check(t, st.Snapshot())
	})
}

// oneDaySource is a minimal single-day Source for the zero-copy path:
// every drive contributes exactly one value per feature.
type oneDaySource struct {
	refs  []dataset.DriveRef
	feats []smart.Feature
}

func (s oneDaySource) Days() int { return 1 }

func (s oneDaySource) DrivesOf(m smart.ModelID) []dataset.DriveRef {
	var out []dataset.DriveRef
	for _, r := range s.refs {
		if r.Model == m {
			out = append(out, r)
		}
	}
	return out
}

func (s oneDaySource) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	cols := make(map[smart.Feature][]float64, len(s.feats))
	for fi, ft := range s.feats {
		cols[ft] = []float64{float64(ref.ID*1000 + fi)}
	}
	return cols, 0, nil
}

// TestDayColumnsZeroCopy pins the single-day fast path: the returned
// columns alias the spill file's blob rather than copying it.
func TestDayColumnsZeroCopy(t *testing.T) {
	probeCols, _, err := testFleet(t).Series(testFleet(t).DrivesOf(smart.MC1)[0])
	if err != nil {
		t.Fatal(err)
	}
	one := oneDaySource{feats: sortedFeatures(probeCols)}
	for i := 0; i < 120; i++ {
		one.refs = append(one.refs, dataset.DriveRef{ID: i, Model: smart.MC1, FailDay: -1})
	}
	src := dataset.Source(one)
	dir := t.TempDir()
	if _, err := WriteSpill(dir, src, smart.MC1, 2); err != nil {
		t.Fatal(err)
	}
	st := Open(src, Options{SpillDir: dir})
	defer st.Close()
	if err := st.AppendThrough(0); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	feats, cols, alive, err := snap.DayColumns(smart.MC1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alive) != len(snap.DrivesOf(smart.MC1)) {
		t.Fatalf("%d alive of %d drives on a one-day span", len(alive), len(snap.DrivesOf(smart.MC1)))
	}
	sf := func() *spillFile {
		p, err := snap.part(smart.MC1)
		if err != nil {
			t.Fatal(err)
		}
		return p.sp.Load()
	}()
	if sf == nil {
		t.Fatal("partition is not spill-backed")
	}
	for fi := range feats {
		if len(cols[fi]) != len(alive) {
			t.Fatalf("column %d has %d values, want %d", fi, len(cols[fi]), len(alive))
		}
		if &cols[fi][0] != &sf.column(fi)[0] {
			t.Fatalf("column %d is a copy, want blob alias", fi)
		}
	}
}

// TestSpillCorrupt checks that damaged files are rejected rather than
// silently served.
func TestSpillCorrupt(t *testing.T) {
	src := testFleet(t)
	dir := t.TempDir()
	path, err := WriteSpill(dir, src, smart.MC1, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // break the trailing magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := Open(src, Options{SpillDir: dir})
	if err := st.Track(smart.MC1); err == nil {
		t.Fatal("corrupt spill file accepted")
	}
}

//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. A mapping keeps the underlying pages
// alive after the descriptor closes, so spill files are served straight
// from the page cache without a resident heap copy.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if int64(int(size)) != size {
		return nil, false, syscall.EFBIG
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support still get a working store.
		data, rerr := readAligned(f, size)
		if rerr != nil {
			return nil, false, err
		}
		return data, false, nil
	}
	return b, true, nil
}

func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}

//go:build !unix

package store

import "os"

// mapFile has no mmap on this platform; the file is read into an
// aligned heap buffer instead.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data, err := readAligned(f, size)
	return data, false, err
}

func unmapFile(b []byte) error { return nil }

package store

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/smart"
)

// TestRetryRecoversTransient verifies the bounded-backoff retry path:
// a source whose first two fetches per drive fail transiently ingests
// cleanly with MaxFetchAttempts 3, and the counters account every
// attempt, retry, and error.
func TestRetryRecoversTransient(t *testing.T) {
	fl := faults.NewFlaky(testFleet(t), faults.FlakyConfig{FailFirst: 2})
	st := Open(fl, Options{
		Workers:          4,
		MaxFetchAttempts: 3,
		FetchBackoff:     time.Microsecond,
	})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(59); err != nil {
		t.Fatalf("ingest with retries failed: %v", err)
	}
	c := st.Counters()
	drives := len(st.Snapshot().DrivesOf(smart.MC1))
	if drives == 0 {
		t.Fatal("no drives ingested")
	}
	if want := int64(3 * drives); c.SeriesFetches != want {
		t.Errorf("SeriesFetches = %d, want %d (3 attempts x %d drives)", c.SeriesFetches, want, drives)
	}
	if want := int64(2 * drives); c.FetchRetries != want {
		t.Errorf("FetchRetries = %d, want %d", c.FetchRetries, want)
	}
	if want := int64(2 * drives); c.FetchErrors != want {
		t.Errorf("FetchErrors = %d, want %d", c.FetchErrors, want)
	}
	if want := cleanDaysThrough(t, 59); c.DaysIngested != want {
		t.Errorf("DaysIngested = %d, want %d", c.DaysIngested, want)
	}
}

// cleanDaysThrough returns the DaysIngested a fault-free store counts
// for the MC1 partition of the shared test fleet through the given
// day — the baseline every faulty-but-recovered ingest must match.
func cleanDaysThrough(t *testing.T, day int) int64 {
	t.Helper()
	st := Open(testFleet(t), Options{Workers: 1})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(day); err != nil {
		t.Fatal(err)
	}
	return st.Counters().DaysIngested
}

// TestFailedIngestLeavesNothingVisible is satellite 3's core claim: a
// mid-append source failure must not advance the visible horizon,
// must not count any ingested day, and must leave snapshots unable to
// see any partially-ingested data. A subsequent append against a
// healed source then succeeds from the original horizon.
func TestFailedIngestLeavesNothingVisible(t *testing.T) {
	src := testFleet(t)
	fl := faults.NewFlaky(src, faults.FlakyConfig{FailFirst: 1})
	// Single attempt: the first fetch of every drive fails, so the
	// append must fail no matter which drive the workers reach first.
	// Tracking at horizon 0 fetches nothing and therefore succeeds.
	st := Open(fl, Options{Workers: 4})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	err := st.AppendThrough(59)
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("AppendThrough error = %v, want ErrTransient", err)
	}
	if h := st.Horizon(); h != 0 {
		t.Errorf("failed append advanced horizon to %d", h)
	}
	c := st.Counters()
	if c.DaysIngested != 0 {
		t.Errorf("failed append counted %d ingested days", c.DaysIngested)
	}
	if c.Appends != 0 {
		t.Errorf("failed append counted %d appends", c.Appends)
	}
	if c.FetchErrors == 0 {
		t.Error("no fetch errors counted")
	}
	snap := st.Snapshot()
	if snap.Days() != 0 {
		t.Errorf("snapshot after failed append sees %d days", snap.Days())
	}
	for _, ref := range src.DrivesOf(smart.MC1) {
		if _, _, err := snap.Series(ref); err == nil {
			t.Fatalf("drive %d visible through snapshot after failed append", ref.ID)
		}
		break // one drive suffices; all are equivalent
	}

	// The source heals (FailFirst exhausted per drive on the second
	// attempt): retrying the same append now succeeds in full.
	if err := st.AppendThrough(59); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if h := st.Horizon(); h != 60 {
		t.Errorf("horizon after healed append = %d, want 60", h)
	}
	c = st.Counters()
	if want := cleanDaysThrough(t, 59); c.DaysIngested != want {
		t.Errorf("DaysIngested = %d, want %d", c.DaysIngested, want)
	}
}

// TestPartialFailureRetryDoesNotRefetch verifies that drives fetched
// before a mid-append failure stay cached: the retry refetches only
// the drives that failed.
func TestPartialFailureRetryDoesNotRefetch(t *testing.T) {
	src := newCountingSource(testFleet(t))
	refs := src.DrivesOf(smart.MC1)
	victim := refs[len(refs)/2].ID
	fl := &failDriveOnce{Source: src, drive: victim}
	st := Open(fl, Options{Workers: 1})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(59); err == nil {
		t.Fatal("expected append failure on poisoned drive")
	}
	if st.Horizon() != 0 || st.Counters().DaysIngested != 0 {
		t.Fatalf("partial failure leaked visibility: horizon=%d counters=%+v", st.Horizon(), st.Counters())
	}
	if err := st.AppendThrough(59); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	// The injected failure dies in the wrapper before reaching the
	// upstream source, so a clean cache means every drive hit upstream
	// exactly once across both appends.
	if len(src.calls) == 0 {
		t.Fatal("no upstream fetches recorded")
	}
	for id, n := range src.calls {
		if n != 1 {
			t.Errorf("drive %d fetched %d times from upstream, want 1", id, n)
		}
	}
}

// failDriveOnce fails the first fetch of one specific drive.
type failDriveOnce struct {
	dataset.Source
	drive  int
	failed bool
}

func (f *failDriveOnce) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	if ref.ID == f.drive && !f.failed {
		f.failed = true
		return nil, 0, errors.New("injected one-shot fetch failure")
	}
	return f.Source.Series(ref)
}

// TestFetchTimeoutSteppedAround verifies the per-attempt deadline: a
// source that hangs its first fetch per drive times out with
// ErrFetchTimeout, and with retries enabled the second (non-hung)
// attempt succeeds.
func TestFetchTimeoutSteppedAround(t *testing.T) {
	fl := faults.NewFlaky(testFleet(t), faults.FlakyConfig{HangFirst: 1})
	defer fl.ReleaseHung() // let leaked fetch goroutines finish

	st := Open(fl, Options{
		Workers:          2,
		MaxFetchAttempts: 2,
		FetchBackoff:     time.Microsecond,
		FetchTimeout:     30 * time.Millisecond,
	})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(29); err != nil {
		t.Fatalf("append with hung-then-live source: %v", err)
	}
	if h := st.Horizon(); h != 30 {
		t.Errorf("horizon = %d, want 30", h)
	}
	c := st.Counters()
	if c.FetchErrors == 0 || c.FetchRetries == 0 {
		t.Errorf("timeouts not accounted: %+v", c)
	}
}

// TestFetchTimeoutErrorIdentity verifies an exhausted hung fetch
// surfaces ErrFetchTimeout to the caller.
func TestFetchTimeoutErrorIdentity(t *testing.T) {
	fl := faults.NewFlaky(testFleet(t), faults.FlakyConfig{HangFirst: 10})
	defer fl.ReleaseHung()

	st := Open(fl, Options{Workers: 1, FetchTimeout: 20 * time.Millisecond})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	err := st.AppendThrough(9)
	if !errors.Is(err, ErrFetchTimeout) {
		t.Fatalf("error = %v, want ErrFetchTimeout", err)
	}
	if st.Horizon() != 0 {
		t.Errorf("horizon advanced past timeout: %d", st.Horizon())
	}
}

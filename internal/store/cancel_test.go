package store

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/smart"
)

// cancel_test.go covers context cancellation on the ingest fetch
// path: a cancelled or deadline-bounded AppendThroughCtx must return
// promptly (not serve out its retry backoff or wait on a hung
// upstream), leave the horizon and ingest counters untouched, and
// leak no goroutines once the upstream unwedges.

// waitGoroutines polls until the goroutine count returns to (near)
// base or fails the test.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Errorf("goroutines stuck: %d now vs %d baseline\n%s", n, base, buf[:runtime.Stack(buf, true)])
}

// TestAppendCancelMidBackoff: a source failing every attempt with a
// long retry backoff holds the append in sleep most of the time;
// cancelling mid-backoff must interrupt the sleep immediately, leave
// nothing visible, and park no goroutines.
func TestAppendCancelMidBackoff(t *testing.T) {
	base := runtime.NumGoroutine()
	fl := faults.NewFlaky(testFleet(t), faults.FlakyConfig{FailFirst: 1 << 30})
	st := Open(fl, Options{
		Workers:          2,
		MaxFetchAttempts: 1 << 20,
		FetchBackoff:     200 * time.Millisecond,
		FetchBackoffMax:  200 * time.Millisecond,
	})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // land inside a backoff sleep
		cancel()
	}()
	start := time.Now()
	err := st.AppendThroughCtx(ctx, 59)
	took := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled append error = %v, want Canceled", err)
	}
	// Prompt return: nowhere near even two 200ms backoff rounds.
	if took > 2*time.Second {
		t.Errorf("cancelled append took %v; want prompt return", took)
	}

	if h := st.Horizon(); h != 0 {
		t.Errorf("cancelled append advanced horizon to %d", h)
	}
	c := st.Counters()
	if c.DaysIngested != 0 || c.Appends != 0 {
		t.Errorf("cancelled append left counters: %+v", c)
	}
	if snap := st.Snapshot(); snap.Days() != 0 {
		t.Errorf("snapshot after cancelled append sees %d days", snap.Days())
	}
	waitGoroutines(t, base)
}

// TestAppendDeadlineOnHungSource: with no per-attempt FetchTimeout, a
// hung upstream is bounded only by the caller's context — the append
// must step out at the deadline, and after the upstream unwedges a
// clean retry ingests the exact fault-free counter baseline.
func TestAppendDeadlineOnHungSource(t *testing.T) {
	base := runtime.NumGoroutine()
	fl := faults.NewFlaky(testFleet(t), faults.FlakyConfig{HangFirst: 1})
	st := Open(fl, Options{Workers: 2})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := st.AppendThroughCtx(ctx, 59)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-bounded append error = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline-bounded append took %v; want ~50ms", took)
	}
	if h := st.Horizon(); h != 0 {
		t.Errorf("abandoned append advanced horizon to %d", h)
	}
	// Stepping around a hang without Source cancellation leaks the
	// fetch goroutine until the upstream unwedges; release it and the
	// count must come home.
	fl.ReleaseHung()
	waitGoroutines(t, base)

	// The upstream is healed (hangs were first-attempt-only and
	// released): the same append now succeeds in full, and the
	// visible-cell accounting matches a store that never saw a fault.
	if err := st.AppendThrough(59); err != nil {
		t.Fatalf("append after release: %v", err)
	}
	if h := st.Horizon(); h != 60 {
		t.Errorf("horizon after healed append = %d, want 60", h)
	}
	c := st.Counters()
	if want := cleanDaysThrough(t, 59); c.DaysIngested != want {
		t.Errorf("DaysIngested = %d, want %d", c.DaysIngested, want)
	}
}

// TestSnapshotSeriesCtxCancel: the snapshot read path honors its
// context too — a cancelled SeriesCtx returns the context error
// without counting a fetch error or retry.
func TestSnapshotSeriesCtxCancel(t *testing.T) {
	src := testFleet(t)
	st := Open(src, Options{MaxFetchAttempts: 3, FetchBackoff: time.Hour})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(9); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ref := src.DrivesOf(smart.MC1)[0]
	before := st.Counters()
	if _, _, err := snap.SeriesCtx(ctx, ref); !errors.Is(err, context.Canceled) {
		t.Fatalf("SeriesCtx on cancelled ctx = %v, want Canceled", err)
	}
	after := st.Counters()
	if after.FetchErrors != before.FetchErrors || after.FetchRetries != before.FetchRetries {
		t.Errorf("cancellation counted as fetch failure: before %+v after %+v", before, after)
	}

	// The same read with a live context serves normally.
	if _, _, err := snap.SeriesCtx(context.Background(), ref); err != nil {
		t.Fatalf("SeriesCtx after cancel: %v", err)
	}
}

// Package store provides an append-only, day-partitioned columnar
// fleet store between a raw dataset.Source and the staged prediction
// engine. A Store ingests drive series from its upstream source once —
// one Series fetch per drive, counted — and serves immutable Snapshot
// views bounded by an ingest horizon that only ever advances
// (AppendDay / AppendThrough). A phase advance therefore reuses every
// already-ingested day instead of regenerating the fleet, which the
// ingest counters make assertable.
//
// Snapshots implement dataset.Source, so every existing consumer
// (frame extraction, survival curves, the selectors) reads through the
// store unchanged, and additionally cache the per-model drive-ref
// index that scoring passes previously rebuilt on every call.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/smart"
)

// ErrHorizonRetreat indicates an append that would move the ingest
// horizon backwards; the store is append-only.
var ErrHorizonRetreat = errors.New("store: horizon cannot retreat")

// ErrFetchTimeout indicates an upstream Series fetch that exceeded the
// per-attempt deadline (Options.FetchTimeout).
var ErrFetchTimeout = errors.New("store: fetch deadline exceeded")

// Counters accounts the store's ingest work. All counts are cumulative
// since Open.
type Counters struct {
	// SeriesFetches is the number of upstream Source.Series attempts
	// (retries included). Once every tracked drive is ingested it
	// stays flat: snapshots serve reads from the store, and appending
	// more days never re-fetches a drive.
	SeriesFetches int64
	// DaysIngested is the number of (drive, day) cells made visible by
	// horizon advances, counted exactly once per cell. A failed append
	// leaves it untouched: cells only count once they are actually
	// visible to snapshots.
	DaysIngested int64
	// Appends is the number of AppendDay/AppendThrough calls that
	// advanced the horizon.
	Appends int64
	// Snapshots is the number of Snapshot views taken.
	Snapshots int64
	// FetchRetries is the number of retry attempts after transient
	// upstream fetch errors (attempts beyond each call's first).
	FetchRetries int64
	// FetchErrors is the number of upstream fetch attempts that
	// returned an error (or timed out), whether or not a retry later
	// succeeded.
	FetchErrors int64
}

// Options configures a Store.
type Options struct {
	// Workers bounds per-drive ingest parallelism during AppendThrough
	// and Track; 0 means GOMAXPROCS. The ingested data is identical
	// for any value.
	Workers int
	// MaxFetchAttempts bounds upstream Series attempts per drive fetch:
	// after the first attempt fails, up to MaxFetchAttempts-1 retries
	// follow with exponential backoff. 0 or 1 means a single attempt
	// (no retry), the legacy behavior.
	MaxFetchAttempts int
	// FetchBackoff is the delay before the first retry, doubling per
	// subsequent retry up to FetchBackoffMax; 0 means 10ms.
	FetchBackoff time.Duration
	// FetchBackoffMax caps the growing backoff; 0 means 1s.
	FetchBackoffMax time.Duration
	// FetchTimeout is the per-attempt deadline on an upstream Series
	// call; 0 means no deadline. A timed-out attempt counts as a fetch
	// error and is retried like one. The abandoned call's goroutine is
	// left to finish in the background (the Source interface has no
	// cancellation), so a truly hung upstream leaks one goroutine per
	// timed-out attempt.
	FetchTimeout time.Duration
	// SpillDir enables disk-backed partitions. A tracked model whose
	// spill file (SpillPath) exists under the directory is served from
	// that file — memory-mapped, no upstream fetches, no resident
	// columns — and Spill writes ingested partitions there to release
	// their in-memory columns. Empty disables spilling.
	SpillDir string
}

// Store is the append-only fleet store. Safe for concurrent use; all
// mutation is append-only, so Snapshot views stay valid forever.
type Store struct {
	src  dataset.Source
	opts Options

	mu      sync.RWMutex
	horizon int // days visible to new snapshots
	parts   map[smart.ModelID]*partition

	seriesFetches atomic.Int64
	daysIngested  atomic.Int64
	appends       atomic.Int64
	snapshots     atomic.Int64
	fetchRetries  atomic.Int64
	fetchErrors   atomic.Int64
}

// partition holds one drive model's inventory and columnar series.
// A partition serves from in-memory driveCols, from a spill file (sp),
// or both in sequence: Spill publishes sp before releasing the columns,
// so concurrent readers always find the data in one of the two places.
// Partitions opened directly from a spill file have no driveCols at all
// (drives and byID are nil) and account visibility in spVisible.
type partition struct {
	refs     []dataset.DriveRef
	refIndex map[int]dataset.DriveRef
	idxByID  map[int]int // drive ID -> index in refs / spill order
	byID     map[int]*driveCols
	drives   []*driveCols

	sp        atomic.Pointer[spillFile]
	spVisible atomic.Int64 // cells accounted for drive-less spill partitions
}

// driveCols is one drive's ingested columns. Columns hold the full
// fetched series; visibility is bounded by the snapshot horizon, and
// visible (drive, day) cells are accounted exactly once in
// Counters.DaysIngested. A failed fetch leaves the drive unfetched so
// a later ingest retries it — transient upstream errors must not wedge
// a drive permanently.
type driveCols struct {
	mu      sync.Mutex // serializes fetch attempts for this drive
	fetched bool
	lastDay int
	visible atomic.Int64 // days already accounted as ingested
	cols    map[smart.Feature][]float64
}

// Open wraps an upstream source in an empty store (horizon 0, nothing
// ingested). Models are tracked lazily on first access, or eagerly via
// Track.
func Open(src dataset.Source, opts Options) *Store {
	return &Store{src: src, opts: opts, parts: make(map[smart.ModelID]*partition)}
}

// SourceDays returns the upstream dataset span, independent of how
// much has been ingested.
func (st *Store) SourceDays() int { return st.src.Days() }

// Horizon returns the current ingest horizon in days: snapshots taken
// now observe days [0, Horizon()-1].
func (st *Store) Horizon() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.horizon
}

// Counters returns a snapshot of the cumulative ingest counters.
func (st *Store) Counters() Counters {
	return Counters{
		SeriesFetches: st.seriesFetches.Load(),
		DaysIngested:  st.daysIngested.Load(),
		Appends:       st.appends.Load(),
		Snapshots:     st.snapshots.Load(),
		FetchRetries:  st.fetchRetries.Load(),
		FetchErrors:   st.fetchErrors.Load(),
	}
}

// Track creates the model's partition (fetching the upstream drive
// inventory) and ingests its drives through the current horizon. It is
// idempotent; untracked models are also tracked implicitly by the
// first Snapshot access that touches them.
func (st *Store) Track(m smart.ModelID) error {
	st.mu.RLock()
	horizon := st.horizon
	p := st.parts[m]
	st.mu.RUnlock()
	if p == nil {
		var err error
		if p, err = st.createPartition(m); err != nil {
			return err
		}
	}
	return st.ingest(p, horizon)
}

// createPartition installs the model's partition. When Options.SpillDir
// holds a spill file for the model, the partition is disk-backed from
// the start: inventory and series both come from the file and the
// upstream source is never consulted. Otherwise the upstream inventory
// is fetched exactly once.
func (st *Store) createPartition(m smart.ModelID) (*partition, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if p, ok := st.parts[m]; ok {
		return p, nil
	}
	if dir := st.opts.SpillDir; dir != "" {
		sf, refs, err := openSpill(SpillPath(dir, m), m)
		switch {
		case err == nil:
			p := &partition{
				refs:     refs,
				refIndex: make(map[int]dataset.DriveRef, len(refs)),
				idxByID:  make(map[int]int, len(refs)),
			}
			for i, r := range refs {
				p.refIndex[r.ID] = r
				p.idxByID[r.ID] = i
			}
			p.sp.Store(sf)
			st.parts[m] = p
			return p, nil
		case !errors.Is(err, os.ErrNotExist):
			return nil, err
		}
	}
	refs := st.src.DrivesOf(m)
	p := &partition{
		refs:     refs,
		refIndex: make(map[int]dataset.DriveRef, len(refs)),
		idxByID:  make(map[int]int, len(refs)),
		byID:     make(map[int]*driveCols, len(refs)),
		drives:   make([]*driveCols, len(refs)),
	}
	for i, r := range refs {
		p.refIndex[r.ID] = r
		p.idxByID[r.ID] = i
		p.drives[i] = &driveCols{lastDay: -1}
		p.byID[r.ID] = p.drives[i]
	}
	st.parts[m] = p
	return p, nil
}

// AppendDay advances the ingest horizon by one day.
func (st *Store) AppendDay() error {
	st.mu.RLock()
	horizon := st.horizon
	st.mu.RUnlock()
	return st.AppendThrough(horizon)
}

// AppendThrough advances the ingest horizon so that days [0, day] are
// visible, ingesting only the not-yet-ingested days of every tracked
// partition. Re-appending an already-visible day is a no-op; a horizon
// can never retreat, so snapshots stay immutable.
//
// The horizon advances only after every tracked partition has ingested
// successfully: a source error partway through an append leaves the
// visible horizon — and therefore every snapshot, and the DaysIngested
// counter — exactly where it was, with no partially-visible day.
// Drives fetched before the failure stay cached, so retrying the
// append redoes only the failed fetches.
func (st *Store) AppendThrough(day int) error {
	return st.AppendThroughCtx(context.Background(), day)
}

// AppendThroughCtx is AppendThrough under a context: cancellation or
// an expired deadline abandons the append promptly — mid-backoff and
// mid-fetch included — with the same nothing-visible guarantee as any
// other failed append. Drives fetched before the cancellation stay
// cached for the next attempt.
func (st *Store) AppendThroughCtx(ctx context.Context, day int) error {
	if day < 0 {
		return fmt.Errorf("%w: day %d", ErrHorizonRetreat, day)
	}
	newHorizon := day + 1
	st.mu.RLock()
	cur := st.horizon
	parts := make([]*partition, 0, len(st.parts))
	for _, p := range st.parts {
		parts = append(parts, p)
	}
	st.mu.RUnlock()
	if newHorizon <= cur {
		return nil
	}

	for _, p := range parts {
		if err := st.fetchPartition(ctx, p); err != nil {
			return err
		}
	}

	st.mu.Lock()
	advanced := newHorizon > st.horizon
	if advanced {
		st.horizon = newHorizon
	}
	st.mu.Unlock()
	if !advanced {
		// A concurrent append got there first — and accounted the cells.
		return nil
	}
	st.appends.Add(1)
	for _, p := range parts {
		st.accountPartition(p, newHorizon)
	}
	return nil
}

// ingest brings every drive of the partition up to the given horizon,
// fetching each drive's upstream series as needed and accounting the
// newly visible days.
func (st *Store) ingest(p *partition, horizon int) error {
	if horizon <= 0 {
		return nil
	}
	if err := st.fetchPartition(context.Background(), p); err != nil {
		return err
	}
	st.accountPartition(p, horizon)
	return nil
}

// accountPartition records the partition's newly visible (drive, day)
// cells up to the horizon, exactly once per cell. Drive-less spill
// partitions account at the partition level; everything else per drive.
func (st *Store) accountPartition(p *partition, horizon int) {
	if p.drives == nil {
		sf := p.sp.Load()
		if sf == nil {
			return
		}
		var want int64
		for i := range p.refs {
			want += min(int64(horizon), sf.offs[i+1]-sf.offs[i])
		}
		for {
			have := p.spVisible.Load()
			if want <= have {
				return
			}
			if p.spVisible.CompareAndSwap(have, want) {
				st.daysIngested.Add(want - have)
				return
			}
		}
	}
	for _, dc := range p.drives {
		st.accountVisible(dc, horizon)
	}
}

// fetchPartition brings every drive of the partition into the store
// (already-fetched drives are skipped), in parallel per Options.
// Workers. Spill-backed partitions already hold everything on disk.
// It does not touch visibility accounting. A cancelled context stops
// the sweep promptly: workers abandon their remaining drives and the
// first context error is returned.
func (st *Store) fetchPartition(ctx context.Context, p *partition) error {
	if p.sp.Load() != nil {
		return nil
	}
	workers := st.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.drives) {
		workers = len(p.drives)
	}
	if workers <= 1 {
		for i := range p.drives {
			if err := st.fetchDrive(ctx, p.refs[i], p.drives[i]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(p.drives))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.drives) {
					return
				}
				errs[i] = st.fetchDrive(ctx, p.refs[i], p.drives[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fetchDrive ensures the drive's series is in the store, retrying
// transient upstream errors with bounded exponential backoff and a
// per-attempt deadline (Options). A drive whose fetch ultimately fails
// is left unfetched, so the next ingest attempts it again. A context
// cancellation aborts promptly — it cuts a backoff sleep short and is
// returned unretried without counting as an upstream fetch error.
func (st *Store) fetchDrive(ctx context.Context, ref dataset.DriveRef, dc *driveCols) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if dc.fetched {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("store: fetch drive %d (model %v): %w", ref.ID, ref.Model, err)
	}
	attempts := st.opts.MaxFetchAttempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := st.opts.FetchBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	maxBackoff := st.opts.FetchBackoffMax
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return fmt.Errorf("store: fetch drive %d (model %v): %w", ref.ID, ref.Model, err)
			}
			st.fetchRetries.Add(1)
			backoff = min(backoff*2, maxBackoff)
		}
		cols, lastDay, err := st.fetchSeries(ctx, ref)
		st.seriesFetches.Add(1)
		if err == nil {
			dc.cols = cols
			dc.lastDay = lastDay
			dc.fetched = true
			return nil
		}
		if ctx.Err() != nil {
			// The caller gave up, not the upstream: surface the context
			// error without counting or retrying an upstream failure.
			return fmt.Errorf("store: fetch drive %d (model %v): %w", ref.ID, ref.Model, ctx.Err())
		}
		st.fetchErrors.Add(1)
		lastErr = err
	}
	return fmt.Errorf("store: fetch drive %d (model %v) failed after %d attempt(s): %w",
		ref.ID, ref.Model, attempts, lastErr)
}

// sleepCtx sleeps for d or until the context is done, whichever is
// first, returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// fetchSeries runs one upstream Series attempt under the per-attempt
// deadline (when one is configured) and the caller's context. The
// dataset.Source interface has no cancellation, so an abandoned
// attempt's goroutine is left to finish in the background; a truly
// hung upstream therefore leaks one goroutine per abandoned attempt
// until it unwedges.
func (st *Store) fetchSeries(ctx context.Context, ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	timeout := st.opts.FetchTimeout
	if timeout <= 0 && ctx.Done() == nil {
		return st.src.Series(ref)
	}
	type result struct {
		cols    map[smart.Feature][]float64
		lastDay int
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		cols, lastDay, err := st.src.Series(ref)
		ch <- result{cols, lastDay, err}
	}()
	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case r := <-ch:
		return r.cols, r.lastDay, r.err
	case <-timerC:
		return nil, 0, fmt.Errorf("%w: drive %d after %v", ErrFetchTimeout, ref.ID, timeout)
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// accountVisible records the drive's newly visible days, each
// (drive, day) cell exactly once, up to the given horizon. Unfetched
// drives have nothing visible to account.
func (st *Store) accountVisible(dc *driveCols, horizon int) {
	dc.mu.Lock()
	fetched, lastDay := dc.fetched, dc.lastDay
	dc.mu.Unlock()
	if !fetched {
		return
	}
	want := int64(min(horizon, lastDay+1))
	for {
		have := dc.visible.Load()
		if want <= have {
			return
		}
		if dc.visible.CompareAndSwap(have, want) {
			st.daysIngested.Add(want - have)
			return
		}
	}
}

// Snapshot returns an immutable view of the store as of the current
// horizon. The snapshot implements dataset.Source: Days reports the
// horizon, and every drive's series is truncated to it. Snapshots are
// cheap (no copying) and remain valid as the store keeps appending.
func (st *Store) Snapshot() *Snapshot {
	st.mu.RLock()
	horizon := st.horizon
	st.mu.RUnlock()
	st.snapshots.Add(1)
	return &Snapshot{st: st, days: horizon}
}

// Snapshot is an immutable, horizon-bounded view of a Store.
type Snapshot struct {
	st   *Store
	days int
}

var _ dataset.Source = (*Snapshot)(nil)

// Store returns the owning store, letting engines reuse an existing
// store (and its ingested data) instead of re-wrapping the snapshot.
func (s *Snapshot) Store() *Store { return s.st }

// Days implements dataset.Source: the ingest horizon at snapshot time.
func (s *Snapshot) Days() int { return s.days }

// DrivesOf implements dataset.Source. The inventory (including each
// drive's failure day) comes from the upstream source and is fetched
// once per model.
func (s *Snapshot) DrivesOf(m smart.ModelID) []dataset.DriveRef {
	p, err := s.part(m)
	if err != nil {
		return nil
	}
	return p.refs
}

// RefIndex returns the model's drive-ID-to-ref map, built once per
// model and shared by every snapshot of the store. Scoring passes use
// it instead of rebuilding the map per call.
func (s *Snapshot) RefIndex(m smart.ModelID) map[int]dataset.DriveRef {
	p, err := s.part(m)
	if err != nil {
		return nil
	}
	return p.refIndex
}

// part returns the model's partition, tracking and ingesting it up to
// the snapshot horizon on first access.
func (s *Snapshot) part(m smart.ModelID) (*partition, error) {
	s.st.mu.RLock()
	p := s.st.parts[m]
	s.st.mu.RUnlock()
	if p == nil {
		var err error
		if p, err = s.st.createPartition(m); err != nil {
			return nil, err
		}
		if err := s.st.ingest(p, s.st.Horizon()); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Series implements dataset.Source, serving the drive's columns from
// the store truncated to the snapshot horizon. The returned slices
// alias the store's append-only buffers; treat them as read-only (as
// with every other Source).
func (s *Snapshot) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	return s.SeriesCtx(context.Background(), ref)
}

// SeriesCtx is Series under a context: when the drive is not yet in
// the store and the upstream fetch hangs or retries, cancellation (or
// an expired deadline) abandons the lookup promptly instead of
// stalling the caller. An already-dead context fails the read up
// front — even for a cached drive — so cancelled callers never get a
// result they will discard; the context error is never counted as a
// fetch failure.
func (s *Snapshot) SeriesCtx(ctx context.Context, ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("store: series drive %d (model %v): %w", ref.ID, ref.Model, err)
	}
	p, err := s.part(ref.Model)
	if err != nil {
		return nil, 0, err
	}
	dc := p.byID[ref.ID]
	if dc == nil {
		return s.spillSeries(p, ref)
	}
	// Idempotent: serves from the store after the first fetch (the
	// fetch only happens here when the partition was tracked after the
	// last append).
	if err := s.st.fetchDrive(ctx, ref, dc); err != nil {
		return nil, 0, err
	}
	s.st.accountVisible(dc, s.days)
	dc.mu.Lock()
	cols, lastDay := dc.cols, dc.lastDay
	dc.mu.Unlock()
	if cols == nil {
		// A concurrent Spill released the columns; sp was published
		// before the release, so the file now serves this drive.
		return s.spillSeries(p, ref)
	}
	if lastDay > s.days-1 {
		lastDay = s.days - 1
	}
	if lastDay < 0 {
		return nil, 0, fmt.Errorf("store: drive %d has no days within horizon %d", ref.ID, s.days)
	}
	n := lastDay + 1
	out := make(map[smart.Feature][]float64, len(cols))
	for ft, col := range cols {
		if len(col) < n {
			return nil, 0, fmt.Errorf("store: drive %d feature %v has %d days, horizon needs %d", ref.ID, ft, len(col), n)
		}
		out[ft] = col[:n:n]
	}
	return out, lastDay, nil
}

// spillSeries serves a drive's columns from the partition's spill file,
// truncated to the snapshot horizon. The slices alias the mapped file.
func (s *Snapshot) spillSeries(p *partition, ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	sf := p.sp.Load()
	if sf == nil {
		return nil, 0, fmt.Errorf("store: model %v has no drive %d", ref.Model, ref.ID)
	}
	di, ok := p.idxByID[ref.ID]
	if !ok {
		return nil, 0, fmt.Errorf("store: model %v has no drive %d", ref.Model, ref.ID)
	}
	cols, lastDay, err := sf.series(di, s.days)
	if err != nil {
		return nil, 0, fmt.Errorf("store: drive %d: %w", ref.ID, err)
	}
	return cols, lastDay, nil
}

// Spill writes every tracked, fully ingested partition to
// Options.SpillDir and switches it to serve from the file, releasing
// the in-memory columns. Partitions already disk-backed are skipped.
// Snapshots taken before the spill stay valid throughout: the file is
// published before the columns are released, and the data is
// bit-identical. After a successful Spill the store's resident series
// memory is bounded by the page cache, not the fleet size.
func (st *Store) Spill() error {
	dir := st.opts.SpillDir
	if dir == "" {
		return errors.New("store: Spill requires Options.SpillDir")
	}
	st.mu.RLock()
	parts := make(map[smart.ModelID]*partition, len(st.parts))
	for m, p := range st.parts {
		parts[m] = p
	}
	st.mu.RUnlock()
	for m, p := range parts {
		if p.sp.Load() != nil || len(p.refs) == 0 {
			continue
		}
		if err := st.fetchPartition(context.Background(), p); err != nil {
			return err
		}
		nDays := make([]int, len(p.drives))
		for i, dc := range p.drives {
			nDays[i] = dc.lastDay + 1
		}
		feats := sortedFeatures(p.drives[0].cols)
		path := SpillPath(dir, m)
		err := writeSpillFile(path, m, st.src.Days(), p.refs, feats, nDays, st.opts.Workers,
			func(i int) (map[smart.Feature][]float64, error) { return p.drives[i].cols, nil })
		if err != nil {
			return err
		}
		sf, _, err := openSpill(path, m)
		if err != nil {
			return err
		}
		// Publish the file first, then release the columns: a reader
		// that misses the columns is guaranteed to find the file.
		p.sp.Store(sf)
		for _, dc := range p.drives {
			dc.mu.Lock()
			dc.cols = nil
			dc.mu.Unlock()
		}
	}
	return nil
}

// Close releases the memory mappings of spill-backed partitions. The
// store and any outstanding snapshots must not be used afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, p := range st.parts {
		if sf := p.sp.Swap(nil); sf != nil {
			if err := sf.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// DayColumns returns one scoring matrix for the given day: the model's
// features in canonical order, one column per feature holding that
// day's value for every drive alive on it, and the matching drive refs
// (a subset of DrivesOf in inventory order). When the partition is
// backed by a single-day spill file the columns alias the mapped blob
// directly — scoring a day-partitioned fleet costs zero copies.
func (s *Snapshot) DayColumns(m smart.ModelID, day int) ([]smart.Feature, [][]float64, []dataset.DriveRef, error) {
	if day < 0 || day >= s.days {
		return nil, nil, nil, fmt.Errorf("store: day %d outside horizon %d", day, s.days)
	}
	p, err := s.part(m)
	if err != nil {
		return nil, nil, nil, err
	}
	if sf := p.sp.Load(); sf != nil {
		if day == 0 && sf.total == int64(len(p.refs)) {
			// Every drive spans exactly one day: each feature column of
			// the blob is the scoring column, in inventory order.
			cols := make([][]float64, len(sf.feats))
			for fi := range sf.feats {
				cols[fi] = sf.column(fi)
			}
			return sf.feats, cols, p.refs, nil
		}
		var alive []dataset.DriveRef
		var idxs []int
		for i, r := range p.refs {
			if sf.offs[i+1]-sf.offs[i] > int64(day) {
				alive = append(alive, r)
				idxs = append(idxs, i)
			}
		}
		cols := make([][]float64, len(sf.feats))
		for fi := range sf.feats {
			col := sf.column(fi)
			out := make([]float64, len(idxs))
			for j, i := range idxs {
				out[j] = col[sf.offs[i]+int64(day)]
			}
			cols[fi] = out
		}
		return sf.feats, cols, alive, nil
	}
	if err := s.st.fetchPartition(context.Background(), p); err != nil {
		return nil, nil, nil, err
	}
	if len(p.drives) == 0 {
		return nil, nil, nil, nil
	}
	p.drives[0].mu.Lock()
	feats := sortedFeatures(p.drives[0].cols)
	p.drives[0].mu.Unlock()
	var alive []dataset.DriveRef
	var idxs []int
	for i, dc := range p.drives {
		if dc.lastDay >= day {
			alive = append(alive, p.refs[i])
			idxs = append(idxs, i)
		}
	}
	cols := make([][]float64, len(feats))
	for fi, ft := range feats {
		out := make([]float64, len(idxs))
		for j, i := range idxs {
			col := p.drives[i].cols[ft]
			if day >= len(col) {
				return nil, nil, nil, fmt.Errorf("store: drive %d feature %v has %d days, day %d requested", p.refs[i].ID, ft, len(col), day)
			}
			out[j] = col[day]
		}
		cols[fi] = out
	}
	return feats, cols, alive, nil
}

package store

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/smart"
)

// These tests pin the serving daemon's core concurrency contract:
// ingest admissions (AppendThrough advancing the horizon) racing
// zero-copy snapshot readers — Series, DayColumns, RefIndex — must be
// race-clean AND value-correct. Every value a reader observes must
// equal what a fully-ingested reference store holds, truncated to the
// reader's own snapshot horizon; a horizon can never retreat between
// two snapshots a reader takes.

// refSeries captures the reference answer for every drive.
type refSeries struct {
	cols    map[smart.Feature][]float64
	lastDay int
}

func buildReference(t *testing.T, src dataset.Source) map[int]refSeries {
	t.Helper()
	ref := Open(src, Options{})
	if err := ref.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := ref.AppendThrough(src.Days() - 1); err != nil {
		t.Fatal(err)
	}
	snap := ref.Snapshot()
	out := make(map[int]refSeries)
	for _, r := range snap.DrivesOf(smart.MC1) {
		cols, last, err := snap.Series(r)
		if err != nil {
			t.Fatal(err)
		}
		out[r.ID] = refSeries{cols: cols, lastDay: last}
	}
	return out
}

func runAppendVsReaders(t *testing.T, spill bool) {
	src := testFleet(t)
	days := src.Days()
	ref := buildReference(t, src)

	opts := Options{Workers: 2}
	if spill {
		opts.SpillDir = t.TempDir()
	}
	st := Open(src, opts)
	defer st.Close()
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	start := days / 4
	if err := st.AppendThrough(start - 1); err != nil {
		t.Fatal(err)
	}
	if spill {
		if err := st.Spill(); err != nil {
			t.Fatal(err)
		}
	}

	refsAll := st.Snapshot().DrivesOf(smart.MC1)
	if len(refsAll) == 0 {
		t.Fatal("no drives")
	}

	var appendsDone atomic.Bool
	var wg sync.WaitGroup

	// One admission stream, one day at a time — the serving daemon's
	// /v1/ingest pattern.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer appendsDone.Store(true)
		for d := start; d < days; d++ {
			if err := st.AppendThrough(d); err != nil {
				t.Errorf("append day %d: %v", d, err)
				return
			}
		}
	}()

	// Series readers: full per-drive reads through fresh snapshots.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			lastHorizon := 0
			for !appendsDone.Load() {
				snap := st.Snapshot()
				h := snap.Days()
				if h < lastHorizon {
					t.Errorf("horizon retreated %d -> %d", lastHorizon, h)
					return
				}
				lastHorizon = h
				dr := refsAll[i%len(refsAll)]
				i += 7
				cols, last, err := snap.Series(dr)
				if err != nil {
					t.Errorf("series drive %d: %v", dr.ID, err)
					return
				}
				want := ref[dr.ID]
				wantLast := want.lastDay
				if wantLast > h-1 {
					wantLast = h - 1
				}
				if last != wantLast {
					t.Errorf("drive %d at horizon %d: lastDay %d, want %d", dr.ID, h, last, wantLast)
					return
				}
				for ft, col := range cols {
					wantCol := want.cols[ft]
					if len(col) != last+1 {
						t.Errorf("drive %d feature %v: %d days, want %d", dr.ID, ft, len(col), last+1)
						return
					}
					for d := range col {
						if col[d] != wantCol[d] && !(col[d] != col[d] && wantCol[d] != wantCol[d]) {
							t.Errorf("drive %d feature %v day %d: %v, want %v", dr.ID, ft, d, col[d], wantCol[d])
							return
						}
					}
				}
			}
		}(r)
	}

	// DayColumns readers: whole-day scoring matrices at the snapshot's
	// newest visible day — the fleet-scoring hot path.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !appendsDone.Load() {
				snap := st.Snapshot()
				day := snap.Days() - 1
				feats, cols, alive, err := snap.DayColumns(smart.MC1, day)
				if err != nil {
					t.Errorf("day columns at %d: %v", day, err)
					return
				}
				for fi, ft := range feats {
					for di, dr := range alive {
						got := cols[fi][di]
						want := ref[dr.ID].cols[ft][day]
						if got != want && !(got != got && want != want) {
							t.Errorf("day %d drive %d feature %v: %v, want %v", day, dr.ID, ft, got, want)
							return
						}
					}
				}
			}
		}()
	}

	// RefIndex readers: the per-request drive lookup path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !appendsDone.Load() {
			idx := st.Snapshot().RefIndex(smart.MC1)
			if len(idx) != len(refsAll) {
				t.Errorf("ref index has %d drives, want %d", len(idx), len(refsAll))
				return
			}
		}
	}()

	wg.Wait()

	// After the race, the store must have converged to the reference.
	snap := st.Snapshot()
	if snap.Days() != days {
		t.Fatalf("final horizon %d, want %d", snap.Days(), days)
	}
	for _, dr := range refsAll {
		cols, last, err := snap.Series(dr)
		if err != nil {
			t.Fatal(err)
		}
		want := ref[dr.ID]
		if last != want.lastDay {
			t.Fatalf("drive %d final lastDay %d, want %d", dr.ID, last, want.lastDay)
		}
		for ft, col := range cols {
			for d := range col {
				if col[d] != want.cols[ft][d] && !(col[d] != col[d] && want.cols[ft][d] != want.cols[ft][d]) {
					t.Fatalf("drive %d feature %v day %d diverged", dr.ID, ft, d)
				}
			}
		}
	}
}

func TestConcurrentAppendVsReaders(t *testing.T) {
	runAppendVsReaders(t, false)
}

func TestConcurrentAppendVsReadersSpilled(t *testing.T) {
	runAppendVsReaders(t, true)
}

// TestConcurrentAppenders: many goroutines admitting overlapping day
// ranges must serialize into one monotone horizon with each visible
// cell accounted exactly once.
func TestConcurrentAppenders(t *testing.T) {
	src := testFleet(t)
	days := src.Days()
	st := Open(src, Options{Workers: 2})
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := w; d < days; d += 2 { // overlapping strides
				if err := st.AppendThrough(d); err != nil {
					t.Errorf("append %d: %v", d, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Horizon() != days {
		t.Fatalf("horizon %d, want %d", st.Horizon(), days)
	}
	want := int64(0)
	snap := st.Snapshot()
	for _, r := range snap.DrivesOf(smart.MC1) {
		_, last, err := snap.Series(r)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(last + 1)
	}
	if got := st.Counters().DaysIngested; got != want {
		t.Fatalf("DaysIngested %d, want %d (each visible cell exactly once)", got, want)
	}
}

package store

import (
	"testing"

	"repro/internal/smart"
)

// The continuous-operation controller appends new days into a store
// whose partitions may have spilled to disk. These regression tests
// pin down incremental ingest on spilled stores: appends after Spill,
// and appends on a store reopened from a spill directory, must serve
// exactly what a never-spilled store serves — without corrupting or
// shadowing the mmap'd partitions, and without upstream re-fetches.

// TestAppendAfterSpill spills mid-ingest, keeps appending days, and
// checks every drive's series against a never-spilled store at full
// horizon.
func TestAppendAfterSpill(t *testing.T) {
	src := testFleet(t)
	days := src.Days()

	plain := Open(src, Options{Workers: 2})
	if err := plain.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := plain.AppendThrough(days - 1); err != nil {
		t.Fatal(err)
	}

	spilled := Open(src, Options{Workers: 2, SpillDir: t.TempDir()})
	defer spilled.Close()
	if err := spilled.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	mid := days / 2
	if err := spilled.AppendThrough(mid); err != nil {
		t.Fatal(err)
	}
	if err := spilled.Spill(); err != nil {
		t.Fatal(err)
	}

	// Horizon advances one day at a time over the mmap'd partition.
	for d := mid + 1; d < days; d++ {
		if err := spilled.AppendDay(); err != nil {
			t.Fatalf("AppendDay to %d after spill: %v", d, err)
		}
	}
	if got, want := spilled.Horizon(), plain.Horizon(); got != want {
		t.Fatalf("horizon after spilled appends = %d, want %d", got, want)
	}

	wantSnap, gotSnap := plain.Snapshot(), spilled.Snapshot()
	refs := wantSnap.DrivesOf(smart.MC1)
	if gotRefs := gotSnap.DrivesOf(smart.MC1); len(gotRefs) != len(refs) {
		t.Fatalf("inventory: %d refs vs %d", len(gotRefs), len(refs))
	}
	for _, ref := range refs {
		want, wantLast, err := wantSnap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, gotLast, err := gotSnap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != wantLast {
			t.Fatalf("drive %d last day = %d, want %d", ref.ID, gotLast, wantLast)
		}
		requireSeriesBitEqual(t, want, got, "append-after-spill")
	}
}

// TestAppendAfterSpillHorizonTruncation checks that a snapshot taken
// between appends on a spilled store truncates series to its own
// horizon — the spill file holds full series, and the horizon must
// keep bounding visibility exactly as resident columns do.
func TestAppendAfterSpillHorizonTruncation(t *testing.T) {
	src := testFleet(t)
	st := Open(src, Options{Workers: 2, SpillDir: t.TempDir()})
	defer st.Close()
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	mid := src.Days() / 2
	if err := st.AppendThrough(mid); err != nil {
		t.Fatal(err)
	}
	if err := st.Spill(); err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()
	if err := st.AppendThrough(mid + 10); err != nil {
		t.Fatal(err)
	}

	// A drive alive beyond mid must be truncated in the older
	// snapshot and extended in the newer one.
	for _, ref := range before.DrivesOf(smart.MC1) {
		_, srcLast, err := src.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if srcLast <= mid {
			continue
		}
		_, gotLast, err := before.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != mid {
			t.Fatalf("pre-append snapshot: drive %d last day = %d, want horizon %d", ref.ID, gotLast, mid)
		}
		after := st.Snapshot()
		_, gotLast, err = after.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if want := min(srcLast, mid+10); gotLast != want {
			t.Fatalf("post-append snapshot: drive %d last day = %d, want %d", ref.ID, gotLast, want)
		}
		return
	}
	t.Skip("no drive alive beyond the spill horizon in the fixture")
}

// TestAppendAfterReopen reopens a store from a spill directory and
// appends further days: the horizon must advance over the mmap'd
// partition with zero upstream fetches, and the data must match the
// upstream source bit-for-bit.
func TestAppendAfterReopen(t *testing.T) {
	src := testFleet(t)
	days := src.Days()
	dir := t.TempDir()
	if _, err := WriteSpill(dir, src, smart.MC1, 2); err != nil {
		t.Fatal(err)
	}

	counting := newCountingSource(src)
	st := Open(counting, Options{Workers: 2, SpillDir: dir})
	defer st.Close()
	if err := st.Track(smart.MC1); err != nil {
		t.Fatal(err)
	}
	mid := days / 3
	if err := st.AppendThrough(mid); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendThrough(days - 1); err != nil {
		t.Fatal(err)
	}
	if n := len(counting.calls); n != 0 {
		t.Fatalf("append on reopened spill store fetched %d drives upstream", n)
	}
	if got := st.Horizon(); got != days {
		t.Fatalf("horizon = %d, want %d", got, days)
	}

	snap := st.Snapshot()
	for _, ref := range snap.DrivesOf(smart.MC1) {
		want, wantLast, err := src.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, gotLast, err := snap.Series(ref)
		if err != nil {
			t.Fatal(err)
		}
		if gotLast != wantLast {
			t.Fatalf("drive %d last day = %d, want %d", ref.ID, gotLast, wantLast)
		}
		requireSeriesBitEqual(t, want, got, "append-after-reopen")
	}

	// The ingest counters must account the spilled cells exactly once.
	if c := st.Counters(); c.DaysIngested == 0 {
		t.Error("reopened spill store accounted zero ingested days")
	}
}

// Package textplot renders small ASCII line/scatter plots and aligned
// text tables. The experiments harness uses it to regenerate the
// paper's figures (survival-vs-MWI_N curves of Fig 1, the F0.5-vs-
// selected-percentage sweeps of Fig 2) directly in terminal output.
package textplot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNoData indicates a plot with no points.
var ErrNoData = errors.New("textplot: no data")

// Series is one named line on a plot.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the point coordinates (equal length).
	X, Y []float64
	// Marker is the rune drawn for this series; 0 picks a default.
	Marker rune
}

var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the series onto a width x height character grid with
// simple axis labels. Marks overwrite earlier series on collision.
func Plot(title string, series []Series, width, height int) (string, error) {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	var xMin, xMax, yMin, yMax float64
	first := true
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("textplot: series %q: %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if first {
				xMin, xMax, yMin, yMax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if first {
		return "", ErrNoData
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			c := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(width-1)))
			r := height - 1 - int(math.Round((s.Y[i]-yMin)/(yMax-yMin)*float64(height-1)))
			grid[r][c] = marker
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLabelTop := fmt.Sprintf("%.3g", yMax)
	yLabelBot := fmt.Sprintf("%.3g", yMin)
	pad := len(yLabelTop)
	if len(yLabelBot) > pad {
		pad = len(yLabelBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yLabelTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yLabelBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmt.Sprintf("%.3g", xMax)), fmt.Sprintf("%.3g", xMin), fmt.Sprintf("%.3g", xMax))
	// Legend.
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	return b.String(), nil
}

// Table renders rows as an aligned text table. header may be nil.
func Table(header []string, rows [][]string) string {
	all := rows
	if header != nil {
		all = append([][]string{header}, rows...)
	}
	if len(all) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range all {
		for c, cell := range row {
			for len(widths) <= c {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for c := 0; c < len(widths); c++ {
			cell := ""
			if c < len(row) {
				cell = row[c]
			}
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteString("\n")
	}
	if header != nil {
		writeRow(header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
		b.WriteString("\n")
	}
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Percent renders a fraction as a percentage string ("63%").
func Percent(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

package textplot

import (
	"errors"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	out, err := Plot("demo", []Series{
		{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
	}, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing marks")
	}
	if !strings.Contains(out, "line") {
		t.Error("missing legend")
	}
}

func TestPlotErrors(t *testing.T) {
	if _, err := Plot("", nil, 20, 5); !errors.Is(err, ErrNoData) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := Plot("", []Series{{Name: "bad", X: []float64{1}, Y: nil}}, 20, 5); err == nil {
		t.Error("mismatched series should fail")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out, err := Plot("flat", []Series{
		{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("empty plot")
	}
}

func TestPlotMultipleSeriesMarkers(t *testing.T) {
	out, err := Plot("", []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}},
	}, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected distinct markers:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	// Alignment: "alpha" and "b" rows pad to the same width.
	if len(lines[2]) == 0 || len(lines[3]) == 0 {
		t.Error("empty rows")
	}
	if !strings.Contains(lines[1], "-") {
		t.Error("missing separator")
	}
}

func TestTableNoHeader(t *testing.T) {
	out := Table(nil, [][]string{{"x", "y"}})
	if strings.Contains(out, "-") {
		t.Error("no-header table should have no separator")
	}
}

func TestTableEmpty(t *testing.T) {
	if out := Table(nil, nil); out != "" {
		t.Errorf("empty table = %q", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b", "c"}, [][]string{{"1"}, {"1", "2", "3"}})
	if out == "" {
		t.Error("ragged table should render")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.63) != "63%" {
		t.Errorf("Percent = %q", Percent(0.63))
	}
	if Percent(0) != "0%" {
		t.Errorf("Percent(0) = %q", Percent(0))
	}
}

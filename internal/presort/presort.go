// Package presort provides the shared sort-once machinery of the tree
// learners: per-feature argsorted row orders computed once per dataset,
// and the stable in-place partitioning that maintains them down a tree.
//
// Both internal/tree (CART classifier) and internal/gbdt (Newton
// boosting) consume these orders: instead of re-sorting every candidate
// feature at every node — O(nodes x features x n log n) — a fit sorts
// each feature exactly once and thereafter only scans and partitions,
// which is linear per level. Row indices are int32: fleets of up to two
// billion drive-days fit, and the halved index footprint keeps more of
// the order arrays in cache during the per-node scans.
package presort

import (
	"math"
	"slices"
)

// Argsort returns the row indices of col sorted ascending by value.
// Ties are broken by row index, making the order fully deterministic
// (equivalent to a stable sort of the identity permutation).
func Argsort(col []float64) []int32 {
	idx := make([]int32, len(col))
	ArgsortInto(idx, col)
	return idx
}

// radixCutoff is the length below which a comparison sort beats the
// radix passes' fixed cost.
const radixCutoff = 256

// ArgsortInto fills idx (which must have the same length as col) with
// the ascending argsort of col, ties broken by row index.
//
// Large columns use an LSD radix sort over the order-preserving uint64
// image of each float64: stable passes make ties resolve by original
// index, the running time is linear regardless of value distribution
// (constant, presorted, and adversarial columns all cost the same),
// and no comparison function is ever called.
func ArgsortInto(idx []int32, col []float64) {
	if len(idx) != len(col) {
		panic("presort: index/column length mismatch")
	}
	for i := range idx {
		idx[i] = int32(i)
	}
	if len(col) >= radixCutoff {
		radixArgsort(idx, col)
		return
	}
	// Small columns: comparison sort with an index tie-break, which
	// makes the (unstable) pdqsort result unique and deterministic.
	// Comparing the floatKey images (not the raw floats) keeps this
	// path's total order — including NaN placement — identical to the
	// radix path's, so the cutoff never changes results.
	slices.SortFunc(idx, func(a, b int32) int {
		ka, kb := floatKey(col[a]), floatKey(col[b])
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		default:
			return int(a - b)
		}
	})
}

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float's total order: flip all bits of negatives, flip only the sign
// bit of non-negatives. Quiet NaNs map above +Inf, which is the
// invariant the missing-value-aware tree learners rely on: rows with a
// missing (NaN) value always form a contiguous tail of each presorted
// segment.
func floatKey(v float64) uint64 {
	u := math.Float64bits(v)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

// radixArgsort sorts idx by col using 8 stable byte-wise counting
// passes over the transformed keys.
func radixArgsort(idx []int32, col []float64) {
	n := len(idx)
	keys := make([]uint64, n)
	for i, v := range col {
		keys[i] = floatKey(v)
	}
	tmpIdx := make([]int32, n)
	var count [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, i := range idx {
			count[(keys[i]>>shift)&0xff]++
		}
		if count[(keys[idx[0]]>>shift)&0xff] == n {
			continue // every key shares this byte; pass is a no-op
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for _, i := range idx {
			b := (keys[i] >> shift) & 0xff
			tmpIdx[count[b]] = i
			count[b]++
		}
		copy(idx, tmpIdx)
	}
}

// All argsorts every column. The result is the per-feature presorted
// order a fit computes once and reuses at every node (and, for a
// forest, across every tree).
func All(cols [][]float64) [][]int32 {
	out := make([][]int32, len(cols))
	for f, col := range cols {
		out[f] = Argsort(col)
	}
	return out
}

// PartitionByThreshold stably partitions ord[lo:hi] in place so that
// rows with col[row] <= threshold come first, preserving the relative
// order within both halves. It returns the size of the left half.
// scratch must have capacity at least hi-lo; it is used to hold the
// right half during the single pass.
//
// Stability is what lets a fit maintain sortedness for free: if
// ord[lo:hi] is sorted by any feature's value, both halves remain
// sorted by that feature after partitioning by any other feature.
func PartitionByThreshold(ord []int32, lo, hi int, col []float64, threshold float64, scratch []int32) int {
	scratch = scratch[:0]
	w := lo
	for k := lo; k < hi; k++ {
		i := ord[k]
		if col[i] <= threshold {
			ord[w] = i
			w++
		} else {
			scratch = append(scratch, i)
		}
	}
	copy(ord[w:hi], scratch)
	return w - lo
}

// PartitionBySide stably partitions ord[lo:hi] in place by a per-row
// side mask: rows with side[row] == 1 come first. It returns the size
// of the left half; scratch must have length at least hi-lo.
//
// This is the cache-friendly form of PartitionByThreshold for trees:
// the split feature's sorted segment is scanned once to fill the byte
// mask, then every other feature's order partitions against the mask —
// one byte load per row instead of a random float64 load from the
// split column.
// The mask must hold exactly 0 or 1 per row: the loop is branchless
// (both destinations are written every iteration, cursors advance by
// the mask value), which sidesteps the ~50% mispredicted branch a
// conditional partition pays on every row.
func PartitionBySide(ord []int32, lo, hi int, side []byte, scratch []int32) int {
	w, r := lo, 0
	for k := lo; k < hi; k++ {
		i := ord[k]
		s := int(side[i])
		ord[w] = i // w <= k, so this never clobbers an unread slot
		scratch[r] = i
		w += s
		r += 1 - s
	}
	copy(ord[w:hi], scratch[:r])
	return w - lo
}

// StablePartition stably partitions ord[lo:hi] in place by an arbitrary
// predicate, returning the size of the left (predicate-true) half.
// scratch must have capacity at least hi-lo.
func StablePartition(ord []int32, lo, hi int, left func(int32) bool, scratch []int32) int {
	scratch = scratch[:0]
	w := lo
	for k := lo; k < hi; k++ {
		i := ord[k]
		if left(i) {
			ord[w] = i
			w++
		} else {
			scratch = append(scratch, i)
		}
	}
	copy(ord[w:hi], scratch)
	return w - lo
}

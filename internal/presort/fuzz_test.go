package presort

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToFloats decodes a fuzz payload into a float64 column, keeping
// whatever bit patterns the fuzzer produces — including NaNs (quiet and
// signaling), ±Inf, and negative zero.
func bytesToFloats(data []byte) []float64 {
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

func floatsToBytes(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// FuzzArgsort checks the argsort invariants on arbitrary bit patterns:
// the result is a permutation, it respects the floatKey total order
// with index tie-break, and the small-column comparison path agrees
// with the radix path exactly (the cutoff must never change results).
func FuzzArgsort(f *testing.F) {
	f.Add(floatsToBytes([]float64{3, 1, 2}))
	f.Add(floatsToBytes([]float64{math.NaN(), 0, math.Inf(1), math.Inf(-1), math.NaN()}))
	f.Add(floatsToBytes([]float64{math.Copysign(0, -1), 0, -0.5, math.MaxFloat64}))
	f.Add(floatsToBytes(make([]float64, 300))) // all-constant, radix path
	f.Fuzz(func(t *testing.T, data []byte) {
		col := bytesToFloats(data)
		idx := Argsort(col)

		seen := make([]bool, len(col))
		for _, i := range idx {
			if i < 0 || int(i) >= len(col) || seen[i] {
				t.Fatalf("not a permutation: %v", idx)
			}
			seen[i] = true
		}
		for k := 1; k < len(idx); k++ {
			ka, kb := floatKey(col[idx[k-1]]), floatKey(col[idx[k]])
			if ka > kb {
				t.Fatalf("order violated at %d: %v > %v", k, col[idx[k-1]], col[idx[k]])
			}
			if ka == kb && idx[k-1] >= idx[k] {
				t.Fatalf("tie-break violated at %d: indices %d, %d", k, idx[k-1], idx[k])
			}
		}

		// Cutoff independence: force the radix path on the same column.
		radix := make([]int32, len(col))
		for i := range radix {
			radix[i] = int32(i)
		}
		if len(col) > 0 {
			radixArgsort(radix, col)
		}
		for k := range idx {
			if idx[k] != radix[k] {
				t.Fatalf("comparison and radix paths disagree at %d: %v vs %v", k, idx, radix)
			}
		}
	})
}

// FuzzPartition checks that threshold partitioning of a presorted order
// is a stable permutation with every left row <= threshold (NaN always
// routes right: the missing-tail invariant the tree learners rely on).
func FuzzPartition(f *testing.F) {
	f.Add(floatsToBytes([]float64{0.5, 2, math.NaN(), -1, 0.5}), 0.5)
	f.Add(floatsToBytes([]float64{math.Inf(1), math.Inf(-1), 0}), 0.0)
	f.Add(floatsToBytes([]float64{1, 2, 3, 4}), math.NaN())
	f.Fuzz(func(t *testing.T, data []byte, threshold float64) {
		col := bytesToFloats(data)
		ord := Argsort(col)
		before := append([]int32(nil), ord...)
		scratch := make([]int32, len(ord))
		nLeft := PartitionByThreshold(ord, 0, len(ord), col, threshold, scratch)

		if nLeft < 0 || nLeft > len(ord) {
			t.Fatalf("left size %d out of range", nLeft)
		}
		for k, i := range ord {
			inLeft := col[i] <= threshold
			if (k < nLeft) != inLeft {
				t.Fatalf("row %d (value %v) on wrong side of %v (k=%d, nLeft=%d)",
					i, col[i], threshold, k, nLeft)
			}
		}
		// Stability: each half preserves the presorted relative order,
		// so both halves must be subsequences of the original order.
		assertSubsequence(t, before, ord[:nLeft])
		assertSubsequence(t, before, ord[nLeft:])
	})
}

func assertSubsequence(t *testing.T, full, sub []int32) {
	t.Helper()
	j := 0
	for _, v := range full {
		if j < len(sub) && sub[j] == v {
			j++
		}
	}
	if j != len(sub) {
		t.Fatalf("partition broke relative order: %v not a subsequence of %v", sub, full)
	}
}

package presort

import (
	"math/rand"
	"testing"
	"time"
)

// checkSorted verifies idx holds distinct valid row indices sorted
// ascending by col with ties broken by index. idx may be a sub-range
// (a partitioned half), so it need not cover every row of col.
func checkSorted(t *testing.T, idx []int32, col []float64) {
	t.Helper()
	seen := make([]bool, len(col))
	for _, v := range idx {
		if v < 0 || int(v) >= len(col) {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	for k := 1; k < len(idx); k++ {
		a, b := idx[k-1], idx[k]
		if col[a] > col[b] {
			t.Fatalf("not sorted at %d: col[%d]=%v > col[%d]=%v", k, a, col[a], b, col[b])
		}
		if col[a] == col[b] && a > b {
			t.Fatalf("tie at %d not broken by index: %d before %d", k, a, b)
		}
	}
}

func TestArgsortBasic(t *testing.T) {
	col := []float64{3, 1, 2, 1, 0}
	idx := Argsort(col)
	checkSorted(t, idx, col)
	want := []int32{4, 1, 3, 2, 0}
	for i, v := range want {
		if idx[i] != v {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

// TestArgsortWorstCases covers the quicksort killers the deleted
// hand-rolled sorts were vulnerable to: constant columns (all ties) and
// already-sorted / reverse-sorted input. Beyond correctness, the run
// must finish fast — a quadratic blowup on 200k constant values would
// take minutes, so the deadline guards the complexity regression.
func TestArgsortWorstCases(t *testing.T) {
	const n = 200_000
	cases := map[string]func(i int) float64{
		"constant":      func(i int) float64 { return 42 },
		"sorted":        func(i int) float64 { return float64(i) },
		"reverse":       func(i int) float64 { return float64(n - i) },
		"two-values":    func(i int) float64 { return float64(i % 2) },
		"organ-pipe":    func(i int) float64 { return float64(min(i, n-i)) },
		"mostly-sorted": func(i int) float64 { return float64(i - 5*(i%97)) },
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			col := make([]float64, n)
			for i := range col {
				col[i] = gen(i)
			}
			start := time.Now()
			idx := Argsort(col)
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("argsort of %s column took %v; quadratic regression?", name, d)
			}
			checkSorted(t, idx, col)
		})
	}
}

func TestArgsortRandomWithDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		col := make([]float64, n)
		for i := range col {
			col[i] = float64(rng.Intn(20)) // force heavy ties
		}
		checkSorted(t, Argsort(col), col)
	}
}

func TestArgsortEmptyAndSingle(t *testing.T) {
	if idx := Argsort(nil); len(idx) != 0 {
		t.Fatalf("argsort(nil) = %v", idx)
	}
	if idx := Argsort([]float64{7}); len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("argsort singleton = %v", idx)
	}
}

func TestAll(t *testing.T) {
	cols := [][]float64{{2, 1, 3}, {9, 8, 7}}
	orders := All(cols)
	if len(orders) != 2 {
		t.Fatalf("orders = %d", len(orders))
	}
	for f, ord := range orders {
		checkSorted(t, ord, cols[f])
	}
}

func TestPartitionByThreshold(t *testing.T) {
	col := []float64{5, 1, 4, 2, 3, 0}
	ord := Argsort(col) // 5 1 3 4 2 0 (values 0 1 2 3 4 5)
	scratch := make([]int32, len(ord))
	nl := PartitionByThreshold(ord, 0, len(ord), col, 2.5, scratch)
	if nl != 3 {
		t.Fatalf("left size = %d, want 3", nl)
	}
	// Both halves must stay sorted by col (stability preserves order).
	checkSorted(t, ord[:nl], col)
	checkSorted(t, ord[nl:], col)
	for _, i := range ord[:nl] {
		if col[i] > 2.5 {
			t.Fatalf("left half contains %v", col[i])
		}
	}
	for _, i := range ord[nl:] {
		if col[i] <= 2.5 {
			t.Fatalf("right half contains %v", col[i])
		}
	}
}

// TestPartitionMaintainsSortedness is the core invariant of the
// sort-once design: partitioning feature A's order by feature B's
// threshold must leave both halves sorted by A.
func TestPartitionMaintainsSortedness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 400
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(rng.Intn(10)) // ties in the sorted feature
		b[i] = rng.NormFloat64()
	}
	ordA := Argsort(a)
	scratch := make([]int32, n)
	nl := PartitionByThreshold(ordA, 0, n, b, 0, scratch)
	checkSorted(t, ordA[:nl], a)
	checkSorted(t, ordA[nl:], a)

	// Partition a sub-range of the left half again (as a deeper tree
	// node would) and re-check.
	if nl > 10 {
		nl2 := PartitionByThreshold(ordA, 2, nl, b, -0.5, scratch)
		checkSorted(t, ordA[2:2+nl2], a)
		checkSorted(t, ordA[2+nl2:nl], a)
	}
}

func TestPartitionEdges(t *testing.T) {
	col := []float64{1, 2, 3}
	scratch := make([]int32, 3)

	ord := Argsort(col)
	if nl := PartitionByThreshold(ord, 0, 3, col, 10, scratch); nl != 3 {
		t.Fatalf("all-left partition = %d", nl)
	}
	checkSorted(t, ord, col)

	ord = Argsort(col)
	if nl := PartitionByThreshold(ord, 0, 3, col, -10, scratch); nl != 0 {
		t.Fatalf("all-right partition = %d", nl)
	}
	checkSorted(t, ord, col)

	ord = Argsort(col)
	if nl := PartitionByThreshold(ord, 1, 1, col, 0, scratch); nl != 0 {
		t.Fatalf("empty-range partition = %d", nl)
	}
}

// TestPartitionBySideMatchesThreshold checks the byte-mask fast path
// against the threshold partition it replaces in the tree hot loop.
func TestPartitionBySideMatchesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 300
	a := make([]float64, n)
	b := make([]float64, n)
	side := make([]byte, n)
	for i := 0; i < n; i++ {
		a[i] = float64(rng.Intn(8))
		b[i] = rng.NormFloat64()
		if b[i] <= 0.25 {
			side[i] = 1
		}
	}
	scratch := make([]int32, n)
	byThresh := Argsort(a)
	bySide := append([]int32(nil), byThresh...)
	nl1 := PartitionByThreshold(byThresh, 5, n-3, b, 0.25, scratch)
	nl2 := PartitionBySide(bySide, 5, n-3, side, scratch)
	if nl1 != nl2 {
		t.Fatalf("left sizes differ: %d vs %d", nl1, nl2)
	}
	for i := range byThresh {
		if byThresh[i] != bySide[i] {
			t.Fatalf("orders differ at %d: %d vs %d", i, byThresh[i], bySide[i])
		}
	}
	checkSorted(t, bySide[5:5+nl2], a)
	checkSorted(t, bySide[5+nl2:n-3], a)
}

func TestStablePartition(t *testing.T) {
	ord := []int32{0, 1, 2, 3, 4, 5}
	scratch := make([]int32, 6)
	nl := StablePartition(ord, 0, 6, func(i int32) bool { return i%2 == 0 }, scratch)
	if nl != 3 {
		t.Fatalf("left size = %d", nl)
	}
	want := []int32{0, 2, 4, 1, 3, 5}
	for i, v := range want {
		if ord[i] != v {
			t.Fatalf("ord = %v, want %v", ord, want)
		}
	}
}

func BenchmarkArgsort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	col := make([]float64, 10000)
	for i := range col {
		col[i] = rng.NormFloat64()
	}
	idx := make([]int32, len(col))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArgsortInto(idx, col)
	}
}

func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	col := make([]float64, 10000)
	for i := range col {
		col[i] = rng.NormFloat64()
	}
	ord := Argsort(col)
	scratch := make([]int32, len(ord))
	work := make([]int32, len(ord))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, ord)
		PartitionByThreshold(work, 0, len(work), col, 0, scratch)
	}
}

package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoArtifact indicates a registry name or version that does not
// exist.
var ErrNoArtifact = errors.New("core: no such artifact")

// Registry is a versioned artifact store on the local filesystem:
// each named artifact is a directory of immutable, monotonically
// versioned JSON files,
//
//	<dir>/<name>/v0001.json
//	<dir>/<name>/v0002.json
//	...
//
// Save never overwrites — it always writes the next version — so a
// saved model snapshot can be reproduced exactly later.
type Registry struct {
	// Dir is the registry root; created on first Save.
	Dir string
}

// validName guards against path traversal in artifact names.
func validName(name string) error {
	if name == "" {
		return errors.New("core: empty artifact name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("core: artifact name %q: only letters, digits, '-', '_', '.' allowed", name)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("core: artifact name %q must not start with '.'", name)
	}
	return nil
}

func versionFile(v int) string { return fmt.Sprintf("v%04d.json", v) }

// Versions returns the artifact's existing versions in ascending
// order; an unknown name yields an empty list.
func (r *Registry) Versions(name string) ([]int, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(r.Dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		var v int
		if n, _ := fmt.Sscanf(e.Name(), "v%04d.json", &v); n == 1 && e.Name() == versionFile(v) {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Save writes data as the artifact's next version and returns the
// version number assigned (starting at 1).
//
// The payload is staged in a private temp file, written in full and
// fsynced, then linked into place under the next free version name.
// Linking is atomic and fails when the name exists, so a version file
// that exists is always complete and is never overwritten — even under
// concurrent savers, each of which ends up with its own distinct
// version.
func (r *Registry) Save(name string, data []byte) (int, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	dir := filepath.Join(r.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, ".save-*.tmp")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("core: stage artifact %q: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("core: sync artifact %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	// CreateTemp makes 0600 files; keep the 0644 artifacts of prior
	// releases (the link below shares the inode, hence the mode).
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return 0, fmt.Errorf("core: publish artifact %q: %w", name, err)
	}
	for {
		versions, err := r.Versions(name)
		if err != nil {
			return 0, err
		}
		next := 1
		if len(versions) > 0 {
			next = versions[len(versions)-1] + 1
		}
		// os.Link refuses to replace an existing file, so a concurrent
		// saver that claimed this version first just moves us to the
		// next one.
		err = os.Link(tmpName, filepath.Join(dir, versionFile(next)))
		if err == nil {
			syncDir(dir)
			return next, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return 0, fmt.Errorf("core: publish artifact %q v%d: %w", name, next, err)
		}
	}
}

// syncDir fsyncs the directory so a just-linked version name survives
// a crash. Best-effort: filesystems without directory fsync still get
// the atomic-link guarantee.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load reads one version of the artifact; version <= 0 loads the
// latest. It returns the data and the concrete version loaded.
func (r *Registry) Load(name string, version int) ([]byte, int, error) {
	if version <= 0 {
		return r.Latest(name)
	}
	if err := validName(name); err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(filepath.Join(r.Dir, name, versionFile(version)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("%w: %q v%d", ErrNoArtifact, name, version)
	}
	if err != nil {
		return nil, 0, err
	}
	return data, version, nil
}

// Latest reads the artifact's highest version with a single directory
// listing and returns the data and the version loaded. An empty or
// unknown artifact returns ErrNoArtifact. Versions are immutable once
// linked into place, so the read cannot race a writer.
func (r *Registry) Latest(name string) ([]byte, int, error) {
	versions, err := r.Versions(name)
	if err != nil {
		return nil, 0, err
	}
	if len(versions) == 0 {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoArtifact, name)
	}
	version := versions[len(versions)-1]
	data, err := os.ReadFile(filepath.Join(r.Dir, name, versionFile(version)))
	if err != nil {
		return nil, 0, fmt.Errorf("core: load artifact %q v%d: %w", name, version, err)
	}
	return data, version, nil
}

// LatestVersion returns the artifact's highest existing version, or 0
// when the artifact has none.
func (r *Registry) LatestVersion(name string) (int, error) {
	versions, err := r.Versions(name)
	if err != nil {
		return 0, err
	}
	if len(versions) == 0 {
		return 0, nil
	}
	return versions[len(versions)-1], nil
}

package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/selection"
)

// TestRankerSpecsDefaultBitIdentical pins the refactor's core promise:
// a nil RankerSpecs resolves the paper's five through the registry and
// selects exactly what the pre-registry hardwired slice selected.
func TestRankerSpecsDefaultBitIdentical(t *testing.T) {
	fr := labFrame(t, 900, 3, 9, false, 7)
	base, err := SelectFeatures(fr, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Seed: 7, RankerSpecs: selection.DefaultSpecs()},
		{Seed: 7, RankerSpecs: []string{"Pearson", "SPEARMAN", "j_index", "rf", "xgb"}},
	} {
		sel, err := SelectFeatures(fr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sel, base) {
			t.Errorf("specs %v selection differs from default:\n got %+v\nwant %+v",
				cfg.RankerSpecs, sel, base)
		}
	}
}

func TestRankerSpecsResolved(t *testing.T) {
	fr := labFrame(t, 900, 3, 9, false, 7)
	sel, err := SelectFeatures(fr, Config{Seed: 7, RankerSpecs: []string{
		"pearson", "spearman", "mutual-info", "svm-margin",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Rankers) != 4 {
		t.Fatalf("ranker reports = %d, want 4", len(sel.Rankers))
	}
	names := map[string]bool{}
	for _, r := range sel.Rankers {
		names[r.Name] = true
	}
	for _, want := range []string{"Mutual Information", "SVM-margin"} {
		if !names[want] {
			t.Errorf("report for %q missing (got %v)", want, names)
		}
	}
	if sel.Count < 1 {
		t.Errorf("no features selected")
	}
}

func TestRankerSpecsUnknown(t *testing.T) {
	fr := labFrame(t, 100, 1, 1, false, 2)
	_, err := SelectFeatures(fr, Config{RankerSpecs: []string{"pearson", "no-such-ranker"}})
	if !errors.Is(err, selection.ErrUnknownRanker) {
		t.Fatalf("error = %v, want ErrUnknownRanker", err)
	}
	if !strings.Contains(err.Error(), "no-such-ranker") {
		t.Errorf("error does not name the bad spec: %v", err)
	}
	if !strings.Contains(err.Error(), "pearson") {
		t.Errorf("error does not list registered rankers: %v", err)
	}
}

func TestRankerSpecsEmptySlice(t *testing.T) {
	fr := labFrame(t, 100, 1, 1, false, 2)
	if _, err := SelectFeatures(fr, Config{RankerSpecs: []string{}}); !errors.Is(err, ErrNoRankers) {
		t.Errorf("empty specs error = %v, want ErrNoRankers", err)
	}
}

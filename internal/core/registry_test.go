package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRegistryVersioning(t *testing.T) {
	reg := &Registry{Dir: t.TempDir()}

	// Unknown artifact: no versions, load fails.
	if vs, err := reg.Versions("model"); err != nil || len(vs) != 0 {
		t.Fatalf("fresh versions = %v, %v", vs, err)
	}
	if _, _, err := reg.Load("model", 0); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("load of missing artifact: %v", err)
	}

	// Saves assign monotone versions and never overwrite.
	for i, payload := range []string{"one", "two", "three"} {
		v, err := reg.Save("model", []byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if v != i+1 {
			t.Fatalf("save %d assigned version %d", i, v)
		}
	}
	vs, err := reg.Versions("model")
	if err != nil || len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("versions = %v, %v", vs, err)
	}

	// version <= 0 loads the latest; explicit versions load exactly.
	data, v, err := reg.Load("model", 0)
	if err != nil || v != 3 || string(data) != "three" {
		t.Fatalf("latest = %q v%d, %v", data, v, err)
	}
	data, v, err = reg.Load("model", 1)
	if err != nil || v != 1 || string(data) != "one" {
		t.Fatalf("v1 = %q v%d, %v", data, v, err)
	}
	if _, _, err := reg.Load("model", 9); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("load of missing version: %v", err)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	reg := &Registry{Dir: t.TempDir()}
	for _, bad := range []string{"", "a/b", "..", ".hidden", "a b", "x\x00y"} {
		if _, err := reg.Save(bad, []byte("x")); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"MC1-wefr", "model_v2", "a.b"} {
		if _, err := reg.Save(good, []byte("x")); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}

// TestRegistryConcurrentSavers races N savers against one artifact
// name: every saver must get a distinct version, and every version
// must load back exactly one saver's complete payload — Save never
// overwrites, loses, or interleaves a concurrent write.
func TestRegistryConcurrentSavers(t *testing.T) {
	reg := &Registry{Dir: t.TempDir()}
	const savers = 16
	versions := make([]int, savers)
	errs := make([]error, savers)
	var wg sync.WaitGroup
	for i := 0; i < savers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			versions[i], errs[i] = reg.Save("m", []byte(fmt.Sprintf("payload-%03d", i)))
		}()
	}
	wg.Wait()

	seen := make(map[int]int, savers) // version -> saver index
	for i := 0; i < savers; i++ {
		if errs[i] != nil {
			t.Fatalf("saver %d: %v", i, errs[i])
		}
		if prev, dup := seen[versions[i]]; dup {
			t.Fatalf("savers %d and %d both assigned version %d", prev, i, versions[i])
		}
		seen[versions[i]] = i
	}
	vs, err := reg.Versions("m")
	if err != nil || len(vs) != savers {
		t.Fatalf("versions = %v, %v (want %d)", vs, err, savers)
	}
	for _, v := range vs {
		data, _, err := reg.Load("m", v)
		if err != nil {
			t.Fatalf("load v%d: %v", v, err)
		}
		saver, ok := seen[v]
		if !ok {
			t.Fatalf("version %d not claimed by any saver", v)
		}
		if want := fmt.Sprintf("payload-%03d", saver); string(data) != want {
			t.Errorf("v%d = %q, want %q", v, data, want)
		}
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Join(reg.Dir, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != savers {
		t.Errorf("%d directory entries, want %d (temp files leaked?)", len(entries), savers)
	}
}

func TestRegistryIgnoresForeignFiles(t *testing.T) {
	reg := &Registry{Dir: t.TempDir()}
	if _, err := reg.Save("m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Stray files in the artifact directory are not versions.
	for _, name := range []string{"notes.txt", "v12.json", "v0002.json.tmp"} {
		if err := os.WriteFile(filepath.Join(reg.Dir, "m", name), []byte("y"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := reg.Versions("m")
	if err != nil || len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
}

// Latest and LatestVersion back both the controller's serving-version
// bookkeeping and predict's -snapshot-version 0 default; their
// empty-registry behavior differs deliberately: Latest fails loudly
// (there is nothing to serve), LatestVersion reports 0 (a valid "no
// versions yet" answer for bootstrap logic).
func TestRegistryLatest(t *testing.T) {
	reg := &Registry{Dir: t.TempDir()}

	// Empty registry: Latest errors, LatestVersion reports zero.
	if _, _, err := reg.Latest("model"); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("Latest on empty registry: %v, want ErrNoArtifact", err)
	}
	if v, err := reg.LatestVersion("model"); err != nil || v != 0 {
		t.Fatalf("LatestVersion on empty registry = %d, %v; want 0, nil", v, err)
	}

	for _, payload := range []string{"one", "two", "three"} {
		if _, err := reg.Save("model", []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	data, v, err := reg.Latest("model")
	if err != nil || v != 3 || string(data) != "three" {
		t.Fatalf("Latest = %q v%d, %v; want \"three\" v3", data, v, err)
	}
	if v, err := reg.LatestVersion("model"); err != nil || v != 3 {
		t.Fatalf("LatestVersion = %d, %v; want 3", v, err)
	}

	// Load with version <= 0 must agree with Latest (predict's
	// -snapshot-version 0 path).
	for _, version := range []int{0, -1} {
		data, v, err := reg.Load("model", version)
		if err != nil || v != 3 || string(data) != "three" {
			t.Fatalf("Load(%d) = %q v%d, %v; want Latest", version, data, v, err)
		}
	}

	// A different artifact name is independent.
	if _, _, err := reg.Latest("other"); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("Latest of unknown artifact: %v, want ErrNoArtifact", err)
	}
}

package core

import (
	"errors"
	"fmt"

	"repro/internal/frame"
	"repro/internal/survival"
)

// ErrNotStarted indicates an Updater queried before its first update.
var ErrNotStarted = errors.New("core: updater has no selection yet")

// Updater implements the periodic re-selection loop of Section IV-D:
// WEFR re-checks the survival change point and refreshes the selected
// features on a fixed cadence (weekly in the paper) as the fleet wears
// out. It is not safe for concurrent use.
type Updater struct {
	cfg      Config
	interval int
	lastDay  int
	current  Result
	started  bool
	history  []UpdateEvent
}

// UpdateEvent records one completed re-selection.
type UpdateEvent struct {
	// Day is the dataset day the update ran.
	Day int
	// Result is the selection produced.
	Result Result
	// Changed reports whether the selected feature set differs from
	// the previous one (for any group).
	Changed bool
}

// NewUpdater returns an updater with the given WEFR configuration and
// re-check interval in days; interval <= 0 means DefaultUpdateInterval.
func NewUpdater(cfg Config, interval int) *Updater {
	if interval <= 0 {
		interval = DefaultUpdateInterval
	}
	return &Updater{cfg: cfg, interval: interval, lastDay: -1 << 30}
}

// Due reports whether a re-selection is due on the given day.
func (u *Updater) Due(day int) bool {
	return !u.started || day-u.lastDay >= u.interval
}

// Update runs WEFR on the given frame and survival curve if an update
// is due, returning whether one ran. The frame should reflect the data
// available up to the given day (the caller owns windowing).
func (u *Updater) Update(day int, fr *frame.Frame, curve survival.Curve) (bool, error) {
	if !u.Due(day) {
		return false, nil
	}
	res, err := Select(fr, curve, u.cfg)
	if err != nil {
		return false, fmt.Errorf("core: update at day %d: %w", day, err)
	}
	changed := !u.started || !sameSelection(u.current, res)
	u.current = res
	u.lastDay = day
	u.started = true
	u.history = append(u.history, UpdateEvent{Day: day, Result: res, Changed: changed})
	return true, nil
}

// Current returns the latest selection.
func (u *Updater) Current() (Result, error) {
	if !u.started {
		return Result{}, ErrNotStarted
	}
	return u.current, nil
}

// FeaturesFor returns the currently selected features for a drive at
// the given wear level.
func (u *Updater) FeaturesFor(mwi float64) ([]string, error) {
	if !u.started {
		return nil, ErrNotStarted
	}
	return u.current.FeaturesFor(mwi), nil
}

// History returns the completed updates, oldest first. The returned
// slice is shared; treat it as read-only.
func (u *Updater) History() []UpdateEvent { return u.history }

// sameSelection compares the feature lists of two results (global and
// per group).
func sameSelection(a, b Result) bool {
	if !equalStrings(a.Global.Features, b.Global.Features) {
		return false
	}
	if (a.Split == nil) != (b.Split == nil) {
		return false
	}
	if a.Split == nil {
		return true
	}
	return a.Split.ThresholdMWI == b.Split.ThresholdMWI &&
		equalStrings(a.Split.Low.Features, b.Split.Low.Features) &&
		equalStrings(a.Split.High.Features, b.Split.High.Features)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

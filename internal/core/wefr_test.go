package core

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/changepoint"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/survival"
)

// labFrame builds a frame with nSignal informative features followed by
// nNoise pure-noise features, with per-sample MWI metadata. When
// wearShift is true, the informative features only carry signal for
// low-MWI samples and a second block carries signal for high-MWI
// samples, planting the wear-dependence WEFR must discover.
func labFrame(t *testing.T, n, nSignal, nNoise int, wearShift bool, seed int64) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	y := make([]int, n)
	meta := make([]frame.Meta, n)
	for i := range y {
		if rng.Float64() < 0.25 {
			y[i] = 1
		}
		meta[i] = frame.Meta{DriveID: i, Day: i % 700, MWI: rng.Float64() * 100}
	}
	var names []string
	var cols [][]float64
	addCol := func(name string, gen func(i int) float64) {
		col := make([]float64, n)
		for i := range col {
			col[i] = gen(i)
		}
		names = append(names, name)
		cols = append(cols, col)
	}
	for s := 0; s < nSignal; s++ {
		s := s
		addCol(sigName(s), func(i int) float64 {
			active := true
			if wearShift {
				active = meta[i].MWI < 50
			}
			if active && y[i] == 1 {
				return 2.2 + rng.NormFloat64()
			}
			return rng.NormFloat64()
		})
	}
	if wearShift {
		for s := 0; s < nSignal; s++ {
			s := s
			addCol(hiName(s), func(i int) float64 {
				if meta[i].MWI >= 50 && y[i] == 1 {
					return 2.2 + rng.NormFloat64()
				}
				return rng.NormFloat64()
			})
		}
	}
	for s := 0; s < nNoise; s++ {
		addCol(noiseName(s), func(int) float64 { return rng.NormFloat64() })
	}
	fr, err := frame.New(names, cols, y, meta)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func sigName(i int) string   { return "SIG_" + string(rune('A'+i)) }
func hiName(i int) string    { return "HI_" + string(rune('A'+i)) }
func noiseName(i int) string { return "NOISE_" + string(rune('A'+i)) }

func TestSelectFeaturesBasic(t *testing.T) {
	fr := labFrame(t, 1200, 4, 12, false, 1)
	sel, err := SelectFeatures(fr, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count != len(sel.Features) || sel.Count < 1 {
		t.Fatalf("count = %d, features = %d", sel.Count, len(sel.Features))
	}
	if sel.Count > 10 {
		t.Errorf("selected %d of 16 features; should prune most noise", sel.Count)
	}
	// All four signal features must be selected.
	got := map[string]bool{}
	for _, f := range sel.Features {
		got[f] = true
	}
	for i := 0; i < 4; i++ {
		if !got[sigName(i)] {
			t.Errorf("signal feature %s not selected (got %v)", sigName(i), sel.Features)
		}
	}
	// Five ranker reports, aligned ranks.
	if len(sel.Rankers) != 5 {
		t.Fatalf("reports = %d", len(sel.Rankers))
	}
	for _, r := range sel.Rankers {
		if len(r.Ranks) != fr.NumFeatures() {
			t.Errorf("%s ranks len = %d", r.Name, len(r.Ranks))
		}
	}
	if len(sel.FinalRanks) != fr.NumFeatures() || len(sel.Order) != fr.NumFeatures() {
		t.Error("final ranks/order misaligned")
	}
	// Complexities ordered with Order and increasing-ish: the first
	// must be below the last (signal simpler than noise).
	if sel.Complexities[0] >= sel.Complexities[len(sel.Complexities)-1] {
		t.Errorf("complexities not increasing: %v", sel.Complexities)
	}
}

func TestSelectFeaturesErrors(t *testing.T) {
	fr := labFrame(t, 100, 1, 1, false, 2)
	if _, err := SelectFeatures(nil, Config{}); !errors.Is(err, ErrNoFeatures) {
		t.Errorf("nil frame error = %v", err)
	}
	if _, err := SelectFeatures(fr, Config{Rankers: []selection.Ranker{}}); !errors.Is(err, ErrNoRankers) {
		t.Errorf("no rankers error = %v", err)
	}
}

// contraryRanker returns a fixed, reversed ranking to exercise outlier
// removal.
type contraryRanker struct{}

func (contraryRanker) Name() string { return "Contrary" }
func (contraryRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	n := fr.NumFeatures()
	scores := make([]float64, n)
	for i := range scores {
		// Inverse of any sane ranking: noise gets top scores.
		scores[i] = float64(i)
	}
	return selection.Result{Scores: scores, Ranks: rankOf(scores)}, nil
}

func rankOf(scores []float64) []float64 {
	n := len(scores)
	ranks := make([]float64, n)
	for i := range scores {
		r := 1.0
		for j := range scores {
			if scores[j] > scores[i] {
				r++
			}
		}
		ranks[i] = r
	}
	return ranks
}

func TestOutlierRankerRemoved(t *testing.T) {
	fr := labFrame(t, 1000, 3, 9, false, 3)
	cfg := Config{
		Rankers: append(selection.DefaultRankers(3), contraryRanker{}),
		Seed:    3,
	}
	sel, err := SelectFeatures(fr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var contrary *RankerReport
	outliers := 0
	for i := range sel.Rankers {
		if sel.Rankers[i].Outlier {
			outliers++
		}
		if sel.Rankers[i].Name == "Contrary" {
			contrary = &sel.Rankers[i]
		}
	}
	if contrary == nil {
		t.Fatal("contrary ranker missing from reports")
	}
	if !contrary.Outlier {
		t.Errorf("contrary ranker not flagged as outlier (meanD=%v)", contrary.MeanDistance)
	}
	// The contrary ranking must not drag the selection toward noise:
	// every signal feature still selected, and the count stays small.
	got := map[string]bool{}
	for _, f := range sel.Features {
		got[f] = true
	}
	for i := 0; i < 3; i++ {
		if !got[sigName(i)] {
			t.Errorf("signal %s missing despite outlier removal: %v", sigName(i), sel.Features)
		}
	}
	if sel.Count > 7 {
		t.Errorf("selected %d of 12 features; contrary ranker inflated the selection", sel.Count)
	}
}

func TestOutlierRemovalKeepsAtLeastTwo(t *testing.T) {
	// Two mutually contrary rankers: neither may be removed, since at
	// least two rankings must survive.
	fr := labFrame(t, 300, 2, 2, false, 4)
	cfg := Config{Rankers: []selection.Ranker{contraryRanker{}, selection.Pearson{}}}
	sel, err := SelectFeatures(fr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, r := range sel.Rankers {
		if !r.Outlier {
			kept++
		}
	}
	if kept < 2 {
		t.Errorf("kept %d rankings, want >= 2", kept)
	}
}

func TestSerialMatchesParallel(t *testing.T) {
	fr := labFrame(t, 800, 3, 8, false, 5)
	a, err := SelectFeatures(fr, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectFeatures(fr, Config{Seed: 5, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(a.Features, b.Features) {
		t.Errorf("parallel %v != serial %v", a.Features, b.Features)
	}
}

// stepCurve builds a survival curve with a drop below MWI 50.
func stepCurve() survival.Curve {
	var c survival.Curve
	for v := 100; v >= 10; v-- {
		rate := 0.97
		if v < 50 {
			rate = 0.80
		}
		// Mild deterministic wiggle so the detector has texture.
		rate += 0.002 * float64(v%3)
		c.Values = append(c.Values, float64(v))
		c.Rates = append(c.Rates, rate)
		c.Counts = append(c.Counts, 100)
	}
	return c
}

func TestSelectWithWearSplit(t *testing.T) {
	fr := labFrame(t, 2500, 3, 6, true, 6)
	res, err := Select(fr, stepCurve(), Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Split == nil {
		t.Fatal("expected a wear split")
	}
	if res.Split.ThresholdMWI < 45 || res.Split.ThresholdMWI > 55 {
		t.Errorf("threshold = %v, want near 50", res.Split.ThresholdMWI)
	}
	if !res.Split.LowRefit || !res.Split.HighRefit {
		t.Errorf("groups not refit: low=%v high=%v", res.Split.LowRefit, res.Split.HighRefit)
	}
	// The low group must prefer SIG features; the high group HI
	// features.
	lowHas, highHas := map[string]bool{}, map[string]bool{}
	for _, f := range res.Split.Low.Features {
		lowHas[f] = true
	}
	for _, f := range res.Split.High.Features {
		highHas[f] = true
	}
	for i := 0; i < 3; i++ {
		if !lowHas[sigName(i)] {
			t.Errorf("low group missing %s: %v", sigName(i), res.Split.Low.Features)
		}
		if !highHas[hiName(i)] {
			t.Errorf("high group missing %s: %v", hiName(i), res.Split.High.Features)
		}
	}
	// FeaturesFor dispatches by MWI.
	if !equalStrings(res.FeaturesFor(10), res.Split.Low.Features) {
		t.Error("FeaturesFor(10) should return the low-group features")
	}
	if !equalStrings(res.FeaturesFor(90), res.Split.High.Features) {
		t.Error("FeaturesFor(90) should return the high-group features")
	}
}

func TestSelectNoCurveNoSplit(t *testing.T) {
	fr := labFrame(t, 600, 2, 4, false, 7)
	res, err := Select(fr, survival.Curve{}, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Split != nil {
		t.Error("empty curve should not split")
	}
	if !equalStrings(res.FeaturesFor(5), res.Global.Features) {
		t.Error("FeaturesFor should fall back to global")
	}
}

func TestSelectFlatCurveNoSplit(t *testing.T) {
	fr := labFrame(t, 600, 2, 4, false, 8)
	var c survival.Curve
	for v := 100; v >= 90; v-- {
		c.Values = append(c.Values, float64(v))
		c.Rates = append(c.Rates, 0.95)
		c.Counts = append(c.Counts, 50)
	}
	res, err := Select(fr, c, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Split != nil {
		t.Error("flat narrow curve should not split")
	}
}

func TestSmallGroupInheritsGlobal(t *testing.T) {
	// Nearly all samples in the high group: the low group lacks
	// positives and must inherit the global selection.
	fr := labFrame(t, 800, 2, 4, false, 9)
	// Force metadata MWI high for all but a handful of rows.
	shifted := fr.FilterRows(func(i int) bool { return true })
	_ = shifted
	res, err := Select(fr, lowTailCurve(), Config{Seed: 9, MinGroupPositives: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Split == nil {
		t.Skip("no change point on this curve; covered elsewhere")
	}
	if res.Split.LowRefit || res.Split.HighRefit {
		t.Error("groups should inherit global selection when too small")
	}
	if !equalStrings(res.Split.Low.Features, res.Global.Features) {
		t.Error("low group should equal global")
	}
}

func lowTailCurve() survival.Curve {
	var c survival.Curve
	for v := 100; v >= 20; v-- {
		rate := 0.96
		if v < 40 {
			rate = 0.7
		}
		c.Values = append(c.Values, float64(v))
		c.Rates = append(c.Rates, rate)
		c.Counts = append(c.Counts, 60)
	}
	return c
}

func TestUpdater(t *testing.T) {
	fr := labFrame(t, 900, 3, 6, false, 10)
	u := NewUpdater(Config{Seed: 10}, 7)

	if _, err := u.Current(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Current before start error = %v", err)
	}
	if _, err := u.FeaturesFor(50); !errors.Is(err, ErrNotStarted) {
		t.Errorf("FeaturesFor before start error = %v", err)
	}
	if !u.Due(0) {
		t.Error("first update should be due")
	}
	ran, err := u.Update(0, fr, survival.Curve{})
	if err != nil || !ran {
		t.Fatalf("first update = (%v, %v)", ran, err)
	}
	if u.Due(3) {
		t.Error("update should not be due 3 days later")
	}
	ran, err = u.Update(3, fr, survival.Curve{})
	if err != nil || ran {
		t.Fatalf("early update = (%v, %v), want no-op", ran, err)
	}
	if !u.Due(7) {
		t.Error("update should be due after the interval")
	}
	ran, err = u.Update(7, fr, survival.Curve{})
	if err != nil || !ran {
		t.Fatalf("second update = (%v, %v)", ran, err)
	}
	hist := u.History()
	if len(hist) != 2 {
		t.Fatalf("history = %d", len(hist))
	}
	if !hist[0].Changed {
		t.Error("first update should count as changed")
	}
	if hist[1].Changed {
		t.Error("identical second update should not count as changed")
	}
	cur, err := u.Current()
	if err != nil {
		t.Fatal(err)
	}
	feats, err := u.FeaturesFor(50)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(feats, cur.Global.Features) {
		t.Error("FeaturesFor mismatch")
	}
}

func TestUpdaterDefaultInterval(t *testing.T) {
	u := NewUpdater(Config{}, 0)
	if u.interval != DefaultUpdateInterval {
		t.Errorf("interval = %d, want %d", u.interval, DefaultUpdateInterval)
	}
}

func TestChangepointConfigDefaulted(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Changepoint == (changepoint.Config{}) {
		t.Error("changepoint config not defaulted")
	}
	if cfg.OutlierZ != DefaultOutlierZ || cfg.ZThreshold != changepoint.DefaultZThreshold {
		t.Error("thresholds not defaulted")
	}
	if len(cfg.Rankers) != 5 {
		t.Error("rankers not defaulted")
	}
}

func TestAggregationStrategies(t *testing.T) {
	fr := labFrame(t, 900, 3, 8, false, 11)
	for _, agg := range []Aggregation{AggregateMean, AggregateMedian, AggregateBest} {
		sel, err := SelectFeatures(fr, Config{Seed: 11, Aggregate: agg})
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		got := map[string]bool{}
		for _, f := range sel.Features {
			got[f] = true
		}
		// Whatever the aggregation, the strong signals must be kept.
		for i := 0; i < 3; i++ {
			if !got[sigName(i)] {
				t.Errorf("%v: missing %s in %v", agg, sigName(i), sel.Features)
			}
		}
	}
	// Unknown aggregation fails loudly.
	if _, err := SelectFeatures(fr, Config{Seed: 11, Aggregate: Aggregation(77)}); err == nil {
		t.Error("unknown aggregation should fail")
	}
}

func TestAggregationString(t *testing.T) {
	if AggregateMean.String() != "mean" || AggregateMedian.String() != "median" || AggregateBest.String() != "best" {
		t.Error("aggregation names")
	}
	if Aggregation(9).String() != "Aggregation(9)" {
		t.Error("unknown aggregation name")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	// WEFR results are plain exported data: deployments persist them
	// as JSON (feature lists per wear group) between weekly updates.
	fr := labFrame(t, 1500, 2, 4, true, 12)
	res, err := Select(fr, stepCurve(), Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !equalStrings(back.Global.Features, res.Global.Features) {
		t.Error("global features changed through JSON")
	}
	if (back.Split == nil) != (res.Split == nil) {
		t.Fatal("split presence changed through JSON")
	}
	if res.Split != nil {
		if back.Split.ThresholdMWI != res.Split.ThresholdMWI {
			t.Error("threshold changed through JSON")
		}
		if !equalStrings(back.Split.Low.Features, res.Split.Low.Features) {
			t.Error("low features changed through JSON")
		}
	}
	// FeaturesFor works identically on the restored result.
	if !equalStrings(back.FeaturesFor(10), res.FeaturesFor(10)) {
		t.Error("FeaturesFor diverged after round trip")
	}
}

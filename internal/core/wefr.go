// Package core implements WEFR — Wear-out-updating Ensemble Feature
// Ranking (Algorithm 1 of the DSN 2021 paper) — the repository's
// primary contribution. WEFR selects SMART learning features for SSD
// failure prediction in an automated and robust manner:
//
//  1. Run the five preliminary feature-selection approaches and collect
//     their rankings (internal/selection).
//  2. Discard rankings whose mean Kendall-tau distance to the others
//     deviates by more than 1.96 standard deviations (95% confidence)
//     from the mean — the robustness step.
//  3. Aggregate the surviving rankings by mean rank.
//  4. Determine the number of selected features automatically from the
//     ensemble of data-complexity measures (internal/complexity).
//  5. If the survival-rate-vs-MWI_N curve has a significant Bayesian
//     change point (internal/survival, internal/changepoint), split the
//     population at the corresponding MWI_N threshold and repeat 1-4
//     per wear-out group — the wear-out-updating step.
//
// The package also provides Updater, the periodic (weekly, per the
// paper) re-selection loop used in production-style deployments.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/changepoint"
	"repro/internal/complexity"
	"repro/internal/frame"
	"repro/internal/hist"
	"repro/internal/selection"
	"repro/internal/stats"
	"repro/internal/survival"
)

// Errors returned by WEFR.
var (
	// ErrNoRankers indicates a configuration with no preliminary
	// approaches.
	ErrNoRankers = errors.New("core: no rankers configured")
	// ErrNoFeatures indicates an input frame without feature columns.
	ErrNoFeatures = errors.New("core: no features")
	// ErrAllRankersFailed indicates that robust mode dropped every
	// preliminary approach, leaving nothing to aggregate.
	ErrAllRankersFailed = errors.New("core: every preliminary ranker failed")
)

// DefaultOutlierZ is the paper's ranking-outlier threshold: 1.96
// standard deviations, the 95% confidence level.
const DefaultOutlierZ = 1.96

// DefaultUpdateInterval is the paper's re-selection cadence in days
// (weekly).
const DefaultUpdateInterval = 7

// Aggregation selects how the surviving rankings are combined into the
// final ranking (line 7 of Algorithm 1). The paper uses the mean; the
// alternatives exist for the aggregation ablation.
type Aggregation int

// Rank-aggregation strategies.
const (
	// AggregateMean averages ranks (the paper's choice; equivalent to
	// Borda count up to ordering).
	AggregateMean Aggregation = iota + 1
	// AggregateMedian takes the element-wise median rank, tolerating
	// one aberrant ranking without the explicit outlier-removal step.
	AggregateMedian
	// AggregateBest takes each feature's best (minimum) rank across
	// approaches.
	AggregateBest
)

// String names the aggregation for reports.
func (a Aggregation) String() string {
	switch a {
	case AggregateMean:
		return "mean"
	case AggregateMedian:
		return "median"
	case AggregateBest:
		return "best"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// Config parameterizes WEFR. The zero value selects the paper's
// settings through withDefaults.
type Config struct {
	// Rankers are the preliminary approaches; nil means RankerSpecs
	// resolved through the selection registry.
	Rankers []selection.Ranker
	// RankerSpecs names registered approaches (selection.Register /
	// selection.Resolve keys) to build with Seed and SplitMethod when
	// Rankers is nil; nil means the paper's five
	// (selection.DefaultSpecs), bit-identical to earlier releases.
	// Unknown names surface as errors from SelectFeatures and Select.
	RankerSpecs []string
	// OutlierZ is the Kendall-tau outlier threshold in standard
	// deviations; 0 means DefaultOutlierZ (1.96).
	OutlierZ float64
	// Cutoff configures the automated feature-count scan; the zero
	// value uses the paper's alpha = 0.75 and log2 warm start.
	Cutoff complexity.CutoffConfig
	// Changepoint configures the survival-curve detector; the zero
	// value uses changepoint.DefaultConfig.
	Changepoint changepoint.Config
	// ZThreshold is the change-point significance threshold; 0 means
	// changepoint.DefaultZThreshold (2.5).
	ZThreshold float64
	// MinGroupPositives is the minimum positive-sample count a
	// wear-out group needs before WEFR re-selects for it (smaller
	// groups inherit the global selection); 0 means 8.
	MinGroupPositives int
	// Aggregate selects the rank-aggregation strategy; 0 means the
	// paper's AggregateMean.
	Aggregate Aggregation
	// Serial disables parallel ranker execution. WEFR runs the
	// preliminary approaches concurrently by default, which is what
	// keeps its runtime close to the slowest ranker (Exp#4).
	Serial bool
	// Seed seeds the default rankers and any randomized ranker
	// settings.
	Seed int64
	// SplitMethod selects the split search of the default tree-based
	// rankers (exact default, histogram-binned opt-in; see
	// internal/hist). Ignored when Rankers is set explicitly.
	SplitMethod hist.SplitMethod
	// Robust, when non-nil, hardens selection against dirty data: each
	// preliminary ranker runs under panic recovery and an optional
	// timeout, and a failing ranker is dropped from the ensemble like a
	// Kendall-tau outlier instead of aborting; a failing change-point
	// detection or wear-group re-selection degrades to the global
	// selection. Nil keeps the strict legacy behavior, in which the
	// first error aborts the whole selection.
	Robust *RobustConfig
}

// RobustConfig parameterizes robust-mode selection.
type RobustConfig struct {
	// RankerTimeout bounds each preliminary approach's runtime; an
	// approach still running after the deadline is dropped (its
	// goroutine is abandoned — rankers hold no external resources).
	// Zero means no timeout.
	RankerTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Rankers == nil && c.RankerSpecs == nil {
		c.Rankers = selection.DefaultRankersSplit(c.Seed, c.SplitMethod)
	}
	if c.OutlierZ <= 0 {
		c.OutlierZ = DefaultOutlierZ
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = changepoint.DefaultZThreshold
	}
	if c.Changepoint == (changepoint.Config{}) {
		c.Changepoint = changepoint.DefaultConfig()
	}
	if c.MinGroupPositives <= 0 {
		c.MinGroupPositives = 8
	}
	if c.Aggregate == 0 {
		c.Aggregate = AggregateMean
	}
	return c
}

// RankerReport records one preliminary approach's contribution.
type RankerReport struct {
	// Name is the approach name.
	Name string
	// Ranks are the approach's fractional feature ranks.
	Ranks []float64
	// MeanDistance is the approach's mean Kendall-tau distance to the
	// other approaches.
	MeanDistance float64
	// Outlier marks rankings discarded by the robustness step.
	Outlier bool
	// Failed marks approaches dropped before the outlier analysis
	// because they errored, panicked, or timed out (robust mode only).
	Failed bool
	// Err describes the failure when Failed is set.
	Err string
}

// Selection is WEFR's output for one feature set: the ordered selected
// features plus the evidence behind them.
type Selection struct {
	// Features are the selected feature names, most important first.
	Features []string
	// Count is len(Features), the automatically determined number.
	Count int
	// FinalRanks is the aggregated mean rank per input feature,
	// aligned with the input frame's columns.
	FinalRanks []float64
	// Order is the feature ordering induced by FinalRanks (indices
	// into the input frame's columns, best first).
	Order []int
	// Complexities is the ensemble complexity measure per feature, in
	// Order order (Complexities[i] belongs to Order[i]).
	Complexities []float64
	// Rankers reports each preliminary approach, including outliers.
	Rankers []RankerReport
}

// Result is the output of the full Algorithm 1: the global selection,
// plus per-wear-group selections when a change point was found.
type Result struct {
	// Global is the selection over all SSDs of the model (lines 1-8).
	Global Selection
	// Split describes the wear-out update (lines 9-15); nil when the
	// survival curve has no significant change point (e.g. MB1/MB2).
	Split *WearSplit
	// Notes lists degradations taken in robust mode: a skipped change
	// point or a wear group that inherited the global selection after
	// its own re-selection failed. Empty on a clean run.
	Notes []string
}

// WearSplit is the wear-out-updating state: the MWI_N threshold at the
// survival change point and the per-group selections.
type WearSplit struct {
	// ThresholdMWI separates the groups: Low is MWI_N < threshold.
	ThresholdMWI float64
	// Z is the change point's significance.
	Z float64
	// Low and High are the per-group selections. Either may equal the
	// global selection when a group lacked sufficient positives.
	Low, High Selection
	// LowRefit and HighRefit report whether the group was actually
	// re-selected (vs inheriting the global selection).
	LowRefit, HighRefit bool
}

// FeaturesFor returns the selected features for a drive with the given
// MWI_N, following the wear-out split when present.
func (r Result) FeaturesFor(mwi float64) []string {
	if r.Split == nil {
		return r.Global.Features
	}
	if mwi < r.Split.ThresholdMWI {
		return r.Split.Low.Features
	}
	return r.Split.High.Features
}

// SelectFeatures runs lines 1-8 of Algorithm 1 on a learning frame:
// preliminary rankings, Kendall-tau outlier removal, mean-rank
// aggregation, and the automated complexity cutoff.
func SelectFeatures(fr *frame.Frame, cfg Config) (Selection, error) {
	cfg = cfg.withDefaults()
	if cfg.Rankers == nil && cfg.RankerSpecs != nil {
		rankers, err := selection.ResolveAll(cfg.RankerSpecs, cfg.Seed, cfg.SplitMethod)
		if err != nil {
			return Selection{}, fmt.Errorf("core: %w", err)
		}
		cfg.Rankers = rankers
	}
	if len(cfg.Rankers) == 0 {
		return Selection{}, ErrNoRankers
	}
	if fr == nil || fr.NumFeatures() == 0 {
		return Selection{}, ErrNoFeatures
	}

	// Lines 3-5: rankings from every preliminary approach, in parallel
	// unless configured serial. Robust mode guards each approach with
	// panic recovery and the configured timeout.
	rank := func(r selection.Ranker) ([]float64, error) {
		res, err := r.Rank(fr)
		return res.Ranks, err
	}
	if cfg.Robust != nil {
		rank = func(r selection.Ranker) ([]float64, error) {
			return rankGuarded(r, fr, cfg.Robust.RankerTimeout)
		}
	}
	ranks := make([][]float64, len(cfg.Rankers))
	errs := make([]error, len(cfg.Rankers))
	if cfg.Serial {
		for i, r := range cfg.Rankers {
			ranks[i], errs[i] = rank(r)
		}
	} else {
		var wg sync.WaitGroup
		for i, r := range cfg.Rankers {
			wg.Add(1)
			go func(i int, r selection.Ranker) {
				defer wg.Done()
				ranks[i], errs[i] = rank(r)
			}(i, r)
		}
		wg.Wait()
	}

	// A ranker failure is fatal in strict mode; robust mode drops the
	// approach from the ensemble, as the paper drops outlier rankings.
	okRankers, okRanks := cfg.Rankers, ranks
	var failedReports []RankerReport
	if cfg.Robust == nil {
		for i, err := range errs {
			if err != nil {
				return Selection{}, fmt.Errorf("core: ranker %s: %w", cfg.Rankers[i].Name(), err)
			}
		}
	} else {
		okRankers, okRanks = nil, nil
		for i, err := range errs {
			if err != nil {
				failedReports = append(failedReports, RankerReport{
					Name: cfg.Rankers[i].Name(), Failed: true, Err: err.Error(),
				})
				continue
			}
			okRankers = append(okRankers, cfg.Rankers[i])
			okRanks = append(okRanks, ranks[i])
		}
		if len(okRanks) == 0 {
			return Selection{}, fmt.Errorf("%w: first failure: %s: %s",
				ErrAllRankersFailed, failedReports[0].Name, failedReports[0].Err)
		}
	}

	// Line 6: discard rankings with outlying mean Kendall-tau distance.
	reports, kept, err := removeOutliers(okRankers, okRanks, cfg.OutlierZ)
	if err != nil {
		return Selection{}, err
	}
	reports = append(reports, failedReports...)

	// Line 7: final ranking = aggregate of the surviving rankings
	// (mean per the paper; median/best for the aggregation ablation).
	var final []float64
	switch cfg.Aggregate {
	case AggregateMean:
		final, err = stats.MeanRanks(kept)
	case AggregateMedian:
		final, err = stats.MedianRanks(kept)
	case AggregateBest:
		final, err = stats.MinRanks(kept)
	default:
		err = fmt.Errorf("core: unknown aggregation %v", cfg.Aggregate)
	}
	if err != nil {
		return Selection{}, fmt.Errorf("core: aggregate rankings: %w", err)
	}
	order := stats.ArgsortAscending(final)

	// Line 8: automated feature count from the complexity ensemble.
	comps := make([]float64, len(order))
	for i, f := range order {
		c, err := complexity.Ensemble(fr.Col(f), fr.Labels())
		if err != nil {
			return Selection{}, fmt.Errorf("core: complexity of %s: %w", fr.Names()[f], err)
		}
		comps[i] = c
	}
	count, err := complexity.AutoCutoff(comps, cfg.Cutoff)
	if err != nil {
		return Selection{}, fmt.Errorf("core: auto cutoff: %w", err)
	}

	names := make([]string, count)
	for i := 0; i < count; i++ {
		names[i] = fr.Names()[order[i]]
	}
	return Selection{
		Features:     names,
		Count:        count,
		FinalRanks:   final,
		Order:        order,
		Complexities: comps,
		Rankers:      reports,
	}, nil
}

// rankGuarded runs one preliminary approach under panic recovery and
// an optional timeout. On timeout the approach's goroutine is
// abandoned (it completes into a buffered channel and is collected).
func rankGuarded(r selection.Ranker, fr *frame.Frame, timeout time.Duration) ([]float64, error) {
	type out struct {
		ranks []float64
		err   error
	}
	ch := make(chan out, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- out{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		res, err := r.Rank(fr)
		ch <- out{ranks: res.Ranks, err: err}
	}()
	if timeout <= 0 {
		o := <-ch
		return o.ranks, o.err
	}
	select {
	case o := <-ch:
		return o.ranks, o.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("timed out after %v", timeout)
	}
}

// removeOutliers computes pairwise Kendall-tau distances between the
// rankings, flags approaches whose mean distance z-score exceeds
// outlierZ, and returns the per-ranker reports plus the surviving
// rankings. At least two rankings always survive: with fewer, the mean
// would degenerate to a single approach and lose robustness.
func removeOutliers(rankers []selection.Ranker, ranks [][]float64, outlierZ float64) ([]RankerReport, [][]float64, error) {
	n := len(ranks)
	reports := make([]RankerReport, n)
	if n == 1 {
		reports[0] = RankerReport{Name: rankers[0].Name(), Ranks: ranks[0]}
		return reports, ranks, nil
	}

	meanD := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d, err := stats.KendallTauDistance(ranks[i], ranks[j])
			if err != nil {
				return nil, nil, fmt.Errorf("core: kendall distance %s vs %s: %w", rankers[i].Name(), rankers[j].Name(), err)
			}
			sum += float64(d)
		}
		meanD[i] = sum / float64(n-1)
	}
	mu, variance, err := stats.MeanVariance(meanD)
	if err != nil {
		return nil, nil, fmt.Errorf("core: outlier stats: %w", err)
	}
	sd := math.Sqrt(variance)

	outlier := make([]bool, n)
	nOut := 0
	if sd > 0 {
		for i := range meanD {
			if (meanD[i]-mu)/sd > outlierZ {
				outlier[i] = true
				nOut++
			}
		}
	}
	// Keep at least two rankings: un-flag the least-deviant outliers.
	for n-nOut < 2 && nOut > 0 {
		worstKeep := -1
		for i := range outlier {
			if outlier[i] && (worstKeep < 0 || meanD[i] < meanD[worstKeep]) {
				worstKeep = i
			}
		}
		outlier[worstKeep] = false
		nOut--
	}

	var kept [][]float64
	for i := range ranks {
		reports[i] = RankerReport{
			Name:         rankers[i].Name(),
			Ranks:        ranks[i],
			MeanDistance: meanD[i],
			Outlier:      outlier[i],
		}
		if !outlier[i] {
			kept = append(kept, ranks[i])
		}
	}
	return reports, kept, nil
}

// Select runs the full Algorithm 1: the global selection over the
// frame, then — when the survival curve has a significant change point
// — per-wear-group re-selection using the frame's per-sample MWI
// metadata. Pass an empty curve (zero Curve) to skip the wear-out
// update (the "WEFR (No update)" baseline of Exp#3).
func Select(fr *frame.Frame, curve survival.Curve, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	global, err := SelectFeatures(fr, cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{Global: global}

	if curve.Len() == 0 {
		return res, nil
	}
	cp, found, err := curve.DetectChangePoint(cfg.Changepoint, cfg.ZThreshold)
	if err != nil {
		// A curve corrupted past detection (non-finite survival rates)
		// degrades to no wear-out update in robust mode.
		if cfg.Robust != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("change point skipped: %v", err))
			return res, nil
		}
		return Result{}, fmt.Errorf("core: change point: %w", err)
	}
	if !found {
		return res, nil
	}

	split := &WearSplit{ThresholdMWI: cp.MWI, Z: cp.Z, Low: global, High: global}
	lowFr := fr.FilterRows(func(i int) bool { return fr.Meta(i).MWI < cp.MWI })
	highFr := fr.FilterRows(func(i int) bool { return fr.Meta(i).MWI >= cp.MWI })

	if groupUsable(lowFr, cfg.MinGroupPositives) {
		sel, err := SelectFeatures(lowFr, cfg)
		if err != nil {
			if cfg.Robust == nil {
				return Result{}, fmt.Errorf("core: low-MWI group: %w", err)
			}
			res.Notes = append(res.Notes, fmt.Sprintf("low-MWI group inherits global selection: %v", err))
		} else {
			split.Low, split.LowRefit = sel, true
		}
	}
	if groupUsable(highFr, cfg.MinGroupPositives) {
		sel, err := SelectFeatures(highFr, cfg)
		if err != nil {
			if cfg.Robust == nil {
				return Result{}, fmt.Errorf("core: high-MWI group: %w", err)
			}
			res.Notes = append(res.Notes, fmt.Sprintf("high-MWI group inherits global selection: %v", err))
		} else {
			split.High, split.HighRefit = sel, true
		}
	}
	res.Split = split
	return res, nil
}

// groupUsable reports whether a wear-out group has enough signal to
// re-select features: both classes present and a minimum number of
// positives.
func groupUsable(fr *frame.Frame, minPositives int) bool {
	pos := fr.Positives()
	return pos >= minPositives && pos < fr.NumRows()
}

package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench regenerates its artifact at reduced scale through the same
// code path cmd/experiments uses; run the CLI for full-scale output.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable6Exp1 -benchtime=1x

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/changepoint"
	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/forest"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/pipeline"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/survival"
)

// benchHarness is shared across benchmarks: the fleet is immutable and
// building it per-bench would dominate every measurement.
var (
	benchOnce sync.Once
	benchH    *experiments.Harness
	benchErr  error
)

func harness(b *testing.B) *experiments.Harness {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.TestConfig()
		cfg.PhaseCount = 1
		benchH, benchErr = experiments.New(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

// BenchmarkTable1Catalog regenerates Table I (attribute availability).
func BenchmarkTable1Catalog(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if out := h.Table1().Render(); out == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2FleetStats regenerates Table II (fleet statistics and
// AFR per model).
func BenchmarkTable2FleetStats(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if len(h.Table2().Rows) != 6 {
			b.Fatal("bad table2")
		}
	}
}

// BenchmarkTable3Importance regenerates Table III (top/last features
// by Random Forest importance, all models).
func BenchmarkTable3Importance(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Rankers regenerates Table IV (top-5 per approach on
// MC1).
func BenchmarkTable4Rankers(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Survival regenerates Figure 1 (survival curves and
// change points, all models).
func BenchmarkFig1Survival(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5WearGroups regenerates Table V (per-wear-group
// rankings).
func BenchmarkTable5WearGroups(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Exp1 regenerates Table VI (Exp#1: WEFR vs
// no-selection vs the five approaches). The heaviest bench; run with
// -benchtime=1x.
func BenchmarkTable6Exp1(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Exp1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Exp2 regenerates Figure 2 (Exp#2: automated vs fixed
// percentage).
func BenchmarkFig2Exp2(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Exp2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7Exp3 regenerates Table VII (Exp#3: wear-out updating).
func BenchmarkTable7Exp3(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Exp3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8Exp4 regenerates Table VIII (Exp#4: ranker and WEFR
// runtimes).
func BenchmarkTable8Exp4(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Exp4(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md "Key design decisions") ---

// benchFrame builds one MC1 selection frame for the ablations.
func benchFrame(b *testing.B) *benchData {
	b.Helper()
	h := harness(b)
	fr, err := dataset.Frame(h.Source(), dataset.FrameOpts{Model: smart.MC1, NegEvery: 40})
	if err != nil {
		b.Fatal(err)
	}
	curve, err := survival.Compute(h.Source(), smart.MC1, 0)
	if err != nil {
		b.Fatal(err)
	}
	return &benchData{fr: fr, curve: curve}
}

type benchData struct {
	fr    *frame.Frame
	curve survival.Curve
}

// BenchmarkAblationOutlierRemoval compares WEFR with and without the
// Kendall-tau outlier-removal step (OutlierZ pushed beyond reach).
func BenchmarkAblationOutlierRemoval(b *testing.B) {
	d := benchFrame(b)
	b.Run("with-removal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectFeatures(d.fr, core.Config{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-removal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectFeatures(d.fr, core.Config{Seed: 1, OutlierZ: 1e9}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationComplexity compares the alpha=0.75 complexity
// ensemble cutoff against single-measure variants.
func BenchmarkAblationComplexity(b *testing.B) {
	d := benchFrame(b)
	for _, alpha := range []float64{0.25, 0.5, 0.75, 1.0} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha-%.2f", alpha), func(b *testing.B) {
			cfg := core.Config{Seed: 1}
			cfg.Cutoff = complexity.CutoffConfig{Alpha: alpha}
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectFeatures(d.fr, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationChangepoint compares the Bayesian change-point
// split against fixed MWI thresholds.
func BenchmarkAblationChangepoint(b *testing.B) {
	d := benchFrame(b)
	b.Run("bayesian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Select(d.fr, d.curve, core.Config{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probabilities-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := changepoint.ChangeProbabilities(d.curve.Rates, changepoint.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelRanking isolates the Exp#4 claim: parallel
// ensemble ranking versus serial.
func BenchmarkAblationParallelRanking(b *testing.B) {
	d := benchFrame(b)
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectFeatures(d.fr, core.Config{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectFeatures(d.fr, core.Config{Seed: 1, Serial: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubstrates measures the individual learners on the MC1
// frame, contextualizing Table VIII.
func BenchmarkSubstrates(b *testing.B) {
	d := benchFrame(b)
	cols := make([][]float64, d.fr.NumFeatures())
	for i := range cols {
		cols[i] = d.fr.Col(i)
	}
	y := d.fr.Labels()
	b.Run("forest-fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := forest.Fit(cols, y, forest.Config{NumTrees: 20, MaxDepth: 8, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rankers", func(b *testing.B) {
		for _, r := range selection.DefaultRankers(1) {
			r := r
			b.Run(r.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := r.Rank(d.fr); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkFleetGeneration measures the simulator itself: fleet
// construction plus one series per drive.
func BenchmarkFleetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fleet, err := simulate.New(simulate.Config{TotalDrives: 500, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range smart.AllModels() {
			for _, d := range fleet.DrivesOf(m) {
				if s := fleet.Series(d); s.LastDay < 0 {
					b.Fatal("bad series")
				}
			}
		}
	}
}

// BenchmarkAblationAggregation compares the paper's mean-rank
// aggregation against median and best-rank alternatives.
func BenchmarkAblationAggregation(b *testing.B) {
	d := benchFrame(b)
	for _, agg := range []core.Aggregation{core.AggregateMean, core.AggregateMedian, core.AggregateBest} {
		agg := agg
		b.Run(agg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectFeatures(d.fr, core.Config{Seed: 1, Aggregate: agg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPredictor compares the Random Forest prediction
// model against the gradient-boosted alternative on one phase.
func BenchmarkAblationPredictor(b *testing.B) {
	h := harness(b)
	ph := pipeline.StandardPhases(730)[2]
	for _, pred := range []pipeline.Predictor{pipeline.PredictorForest, pipeline.PredictorGBDT} {
		pred := pred
		b.Run(pred.String(), func(b *testing.B) {
			cfg := pipeline.Config{
				Forest:    forest.Config{NumTrees: 15, MaxDepth: 8, Seed: 1},
				GBDT:      gbdt.Config{NumRounds: 15, MaxDepth: 3, Eta: 0.3, Lambda: 1},
				NegEvery:  40,
				Predictor: pred,
				Seed:      1,
			}
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.RunPhase(h.Source(), smart.MC1, pipeline.WEFR{NoUpdate: true}, ph, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

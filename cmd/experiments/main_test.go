package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/smart"
)

func TestParseIDs(t *testing.T) {
	got, err := parseIDs("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(order) {
		t.Errorf("all = %v", got)
	}
	got, err = parseIDs("table6, fig1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "table6" || got[1] != "fig1" {
		t.Errorf("subset = %v", got)
	}
	// Aliases resolve.
	got, err = parseIDs("exp1,EXP4")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "table6" || got[1] != "table8" {
		t.Errorf("aliases = %v", got)
	}
	if _, err := parseIDs(",,"); err == nil {
		t.Error("empty list should fail")
	}
	// "none" (the -rank-eval-only sentinel) is valid and runs nothing.
	got, err = parseIDs("none")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("none = %v", got)
	}
}

// validFlags is a baseline flagValues that passes validation.
func validFlags() flagValues { return flagValues{rounds: 1} }

func TestApplyFlagsValidation(t *testing.T) {
	bad := []struct {
		name   string
		mutate func(*flagValues)
	}{
		{"negative drives", func(fv *flagValues) { fv.drives = -1 }},
		{"zero rounds", func(fv *flagValues) { fv.rounds = 0 }},
		{"negative trees", func(fv *flagValues) { fv.trees = -5 }},
		{"negative depth", func(fv *flagValues) { fv.depth = -1 }},
		{"too many phases", func(fv *flagValues) { fv.phases = 4 }},
		{"negative workers", func(fv *flagValues) { fv.workers = -2 }},
		{"unknown model", func(fv *flagValues) { fv.models = "MC1,NOPE" }},
		{"empty model list", func(fv *flagValues) { fv.models = ",," }},
		{"fault rate out of range", func(fv *flagValues) { fv.faults = "gaps=1.5" }},
		{"unknown fault key", func(fv *flagValues) { fv.faults = "warp=0.1" }},
		{"report without robust", func(fv *flagValues) { fv.report = "r.json" }},
		{"unknown ranker", func(fv *flagValues) { fv.rankers = "pearson,no-such-ranker" }},
		{"empty ranker list", func(fv *flagValues) { fv.rankers = ",," }},
		{"rank-eval-json without rank-eval", func(fv *flagValues) { fv.rankEvalJSON = "re.json" }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			fv := validFlags()
			tc.mutate(&fv)
			cfg := experiments.DefaultConfig()
			if err := applyFlags(&cfg, fv); err == nil {
				t.Errorf("flags %+v accepted, want error", fv)
			}
		})
	}

	cfg := experiments.DefaultConfig()
	fv := validFlags()
	fv.models = "MC1, mb2"
	fv.faults = "seed=7,gaps=0.02,dropout=MA1:wear"
	fv.report = "r.json"
	if err := applyFlags(&cfg, fv); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if len(cfg.Models) != 2 || cfg.Models[0] != smart.MC1 || cfg.Models[1] != smart.MB2 {
		t.Errorf("models = %v", cfg.Models)
	}
	if !cfg.Faults.Enabled() || cfg.Faults.GapRate != 0.02 || cfg.Faults.Seed != 7 {
		t.Errorf("faults = %+v", cfg.Faults)
	}
}

func TestApplyFlagsRankers(t *testing.T) {
	cfg := experiments.DefaultConfig()
	fv := validFlags()
	fv.rankers = "pearson, MUTUAL-INFO ,svm"
	if err := applyFlags(&cfg, fv); err != nil {
		t.Fatalf("valid rankers rejected: %v", err)
	}
	want := []string{"pearson", "MUTUAL-INFO", "svm"}
	if len(cfg.RankerSpecs) != len(want) {
		t.Fatalf("RankerSpecs = %v, want %v", cfg.RankerSpecs, want)
	}
	for i, spec := range want {
		if cfg.RankerSpecs[i] != spec {
			t.Errorf("RankerSpecs[%d] = %q, want %q", i, cfg.RankerSpecs[i], spec)
		}
	}

	// The unknown-ranker error must carry the registered-name menu.
	cfg = experiments.DefaultConfig()
	fv = validFlags()
	fv.rankers = "bogus"
	err := applyFlags(&cfg, fv)
	if err == nil {
		t.Fatal("unknown ranker accepted")
	}
	for _, name := range []string{"bogus", "pearson", "svm-margin"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestWriteReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	snap := map[string]int{"gap_days": 3}
	if err := writeReport(snap, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if got["gap_days"] != 3 {
		t.Errorf("report = %v", got)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("report lacks trailing newline")
	}
	if err := writeReport(snap, filepath.Join(t.TempDir(), "no", "such", "dir.json")); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestOrderCoversAllRunners(t *testing.T) {
	// Every canonical id must be distinct.
	seen := map[string]bool{}
	for _, id := range order {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for alias, target := range aliases {
		if !seen[target] {
			t.Errorf("alias %q points to unknown id %q", alias, target)
		}
	}
}

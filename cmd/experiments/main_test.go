package main

import "testing"

func TestParseIDs(t *testing.T) {
	got, err := parseIDs("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(order) {
		t.Errorf("all = %v", got)
	}
	got, err = parseIDs("table6, fig1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "table6" || got[1] != "fig1" {
		t.Errorf("subset = %v", got)
	}
	// Aliases resolve.
	got, err = parseIDs("exp1,EXP4")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "table6" || got[1] != "table8" {
		t.Errorf("aliases = %v", got)
	}
	if _, err := parseIDs(",,"); err == nil {
		t.Error("empty list should fail")
	}
}

func TestOrderCoversAllRunners(t *testing.T) {
	// Every canonical id must be distinct.
	seen := map[string]bool{}
	for _, id := range order {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for alias, target := range aliases {
		if !seen[target] {
			t.Errorf("alias %q points to unknown id %q", alias, target)
		}
	}
}

package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/smart"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything fn printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", runErr, out)
	}
	return out
}

// TestGoldenOutput pins the clean-path harness output byte for byte —
// the equivalent of
//
//	experiments -fast -exp table3,table6 -drives 500 -models MC1 -phases 1 -seed 2
//
// The staged-engine refactor (and any later internal change) must keep
// this output identical to the pre-refactor pipeline's. Workers is
// pinned to 3 while the golden file was generated at the default
// worker count, so a match also exercises the any-worker-count
// bit-identity guarantee.
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden harness run takes ~20s")
	}
	cfg := experiments.TestConfig()
	cfg.Seed = 2
	cfg.TotalDrives = 500
	cfg.PhaseCount = 1
	cfg.Workers = 3
	cfg.Models = []smart.ModelID{smart.MC1}
	got := captureStdout(t, func() error {
		return run(cfg, "table3,table6", 5, "", false, rankEvalFlags{})
	})
	goldenPath := filepath.Join("testdata", "golden_mc1_t3t6.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s (%d vs %d bytes).\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, len(got), len(want), got, string(want))
	}
}

// Command experiments regenerates the tables and figures of the WEFR
// paper's evaluation on a simulated fleet.
//
// Usage:
//
//	experiments -exp all            # everything (slow at full scale)
//	experiments -exp table6         # just Exp#1
//	experiments -exp fig1,table5    # a subset
//	experiments -drives 8000        # scale the fleet up
//	experiments -fast               # reduced settings for a quick pass
//
// Experiment IDs: table1 table2 table3 table4 table5 table6 table7
// table8 fig1 fig2 (aliases exp1=table6, exp2=fig2, exp3=table7,
// exp4=table8).
//
// Fault injection (robustness evaluation):
//
//	experiments -exp table6 -faults "gaps=0.02,dropout=MA1:wear,nan=0.01,tickets-delay=3d"
//	experiments -exp table6 -faults "seed=7,stuck=0.01" -report report.json
//
// With -faults the pipelines run in robust mode; -report writes a JSON
// accounting of injected defects, detected defects, and degradations
// ("-" for stdout). -robust enables robust mode without injection.
//
// Ranker registry (see internal/selection):
//
//	experiments -exp table6 -rankers pearson,mutual-info,svm-margin
//	experiments -rank-eval                      # evaluate every registered ranker
//	experiments -rank-eval -rank-eval-json -    # plus the JSON report on stdout
//
// -rankers names the preliminary approaches by their registry specs
// (unknown names exit nonzero listing the registered ones); -rank-eval
// runs the internal/rankeval harness — stability under bootstrap
// resampling, cross-seed rank similarity, and AUC-vs-k curves for every
// registered ranker plus the WEFR ensemble. When -rank-eval is given
// without an explicit -exp, the regular experiments are skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/hist"
	"repro/internal/rankeval"
	"repro/internal/selection"
	"repro/internal/smart"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids (see doc comment)")
		drives    = flag.Int("drives", 0, "fleet size override (0 = config default)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		fast      = flag.Bool("fast", false, "use the reduced test-scale configuration")
		rounds    = flag.Int("rounds", 5, "averaging rounds for table8 (paper: 20)")
		trees     = flag.Int("trees", 0, "prediction forest size override (paper: 100)")
		depth     = flag.Int("depth", 0, "prediction forest depth override (paper: 13)")
		phases    = flag.Int("phases", 0, "testing phase count (0 = all three)")
		workers   = flag.Int("workers", 0, "parallel workers for extraction/fitting/scoring (0 = GOMAXPROCS, 1 = serial; results identical)")
		splitStr  = flag.String("split-method", "exact", "tree split search: exact (presorted, bit-stable) or hist (histogram-binned, faster)")
		models    = flag.String("models", "", "comma-separated drive models to restrict to (empty = all six)")
		faultSpec = flag.String("faults", "", `fault-injection spec, e.g. "gaps=0.02,dropout=MA1:wear,nan=0.01,tickets-delay=3d" (implies -robust)`)
		robust    = flag.Bool("robust", false, "run pipelines in robust (sanitizing, degrading) mode")
		report    = flag.String("report", "", `write the robustness run report as JSON to this path ("-" = stdout)`)
		stageRep  = flag.Bool("stage-report", false, "print per-stage timing and row counts after the experiments")
		rankers   = flag.String("rankers", "", "comma-separated registry specs of the preliminary approaches (empty = the paper's five)")
		rankEval  = flag.Bool("rank-eval", false, "run the ranker-evaluation harness (every registered ranker + WEFR, or the -rankers subset)")
		rankJSON  = flag.String("rank-eval-json", "", `write the ranker-evaluation report as JSON to this path ("-" = stdout; requires -rank-eval)`)
	)
	flag.Parse()
	expSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})

	cfg := experiments.DefaultConfig()
	if *fast {
		cfg = experiments.TestConfig()
	}
	cfg.Seed = *seed
	if *drives > 0 {
		cfg.TotalDrives = *drives
	}
	if *trees > 0 {
		cfg.Forest.NumTrees = *trees
	}
	if *depth > 0 {
		cfg.Forest.MaxDepth = *depth
	}
	cfg.PhaseCount = *phases
	cfg.Workers = *workers

	if err := applyFlags(&cfg, flagValues{
		drives: *drives, rounds: *rounds, trees: *trees, depth: *depth,
		phases: *phases, workers: *workers,
		models: *models, faults: *faultSpec, report: *report, robust: *robust,
		splitMethod: *splitStr, rankers: *rankers,
		rankEval: *rankEval, rankEvalJSON: *rankJSON,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	expList := *exp
	if *rankEval && !expSet {
		// -rank-eval without an explicit -exp runs only the harness.
		expList = "none"
	}
	if err := run(cfg, expList, *rounds, *report, *stageRep, rankEvalFlags{
		enabled: *rankEval, jsonPath: *rankJSON, fast: *fast,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// flagValues carries the raw flag values into validation so it can be
// exercised by tests without a flag.FlagSet.
type flagValues struct {
	drives, rounds, trees, depth, phases, workers int
	models, faults, report, splitMethod           string
	robust                                        bool
	rankers, rankEvalJSON                         string
	rankEval                                      bool
}

// rankEvalFlags carries the ranker-evaluation request into run.
type rankEvalFlags struct {
	enabled  bool
	jsonPath string
	// fast shrinks the harness (fewer bootstraps/seeds, a shorter
	// AUC-vs-k grid) to CI-smoke scale.
	fast bool
}

// applyFlags validates the raw flag values and folds the fault/model
// flags into cfg. Any invalid input is an error (the caller exits
// nonzero) rather than a silently ignored or clamped value.
func applyFlags(cfg *experiments.Config, fv flagValues) error {
	switch {
	case fv.drives < 0:
		return fmt.Errorf("-drives must be >= 0, got %d", fv.drives)
	case fv.rounds < 1:
		return fmt.Errorf("-rounds must be >= 1, got %d", fv.rounds)
	case fv.trees < 0:
		return fmt.Errorf("-trees must be >= 0, got %d", fv.trees)
	case fv.depth < 0:
		return fmt.Errorf("-depth must be >= 0, got %d", fv.depth)
	case fv.phases < 0 || fv.phases > 3:
		return fmt.Errorf("-phases must be in [0, 3], got %d", fv.phases)
	case fv.workers < 0:
		return fmt.Errorf("-workers must be >= 0, got %d", fv.workers)
	}
	sm, err := hist.ParseSplitMethod(fv.splitMethod)
	if err != nil {
		return err
	}
	cfg.SplitMethod = sm
	cfg.Robust = fv.robust
	if fv.models != "" {
		ms, err := parseModels(fv.models)
		if err != nil {
			return err
		}
		cfg.Models = ms
	}
	if fv.faults != "" {
		fc, err := faults.ParseSpec(fv.faults)
		if err != nil {
			return err
		}
		cfg.Faults = fc
	}
	if fv.report != "" && fv.faults == "" && !fv.robust {
		return fmt.Errorf("-report requires -faults or -robust (nothing to report otherwise)")
	}
	if fv.rankers != "" {
		specs, err := parseRankers(fv.rankers)
		if err != nil {
			return err
		}
		cfg.RankerSpecs = specs
	}
	if fv.rankEvalJSON != "" && !fv.rankEval {
		return fmt.Errorf("-rank-eval-json requires -rank-eval")
	}
	return nil
}

// parseRankers parses a comma-separated ranker spec list and resolves
// every name against the selection registry, so an unknown ranker
// fails fast here — before any fleet simulation — with the registered
// names in the error.
func parseRankers(list string) ([]string, error) {
	var out []string
	for _, raw := range strings.Split(list, ",") {
		spec := strings.TrimSpace(raw)
		if spec == "" {
			continue
		}
		if _, err := selection.Resolve(spec, 0, hist.SplitExact); err != nil {
			return nil, fmt.Errorf("-rankers: %w", err)
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rankers: no rankers in %q", list)
	}
	return out, nil
}

// parseModels parses a comma-separated drive-model list.
func parseModels(list string) ([]smart.ModelID, error) {
	var out []smart.ModelID
	for _, raw := range strings.Split(list, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		m, err := smart.ParseModel(strings.ToUpper(name))
		if err != nil {
			return nil, fmt.Errorf("-models: %w", err)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-models: no models in %q", list)
	}
	return out, nil
}

func run(cfg experiments.Config, expList string, rounds int, reportPath string, stageReport bool, re rankEvalFlags) error {
	ids, err := parseIDs(expList)
	if err != nil {
		return err
	}
	fmt.Printf("building fleet (%d drives, seed %d)...\n\n", cfg.TotalDrives, cfg.Seed)
	h, err := experiments.New(cfg)
	if err != nil {
		return err
	}

	runners := map[string]func() (string, error){
		"table1":   func() (string, error) { return h.Table1().Render(), nil },
		"table2":   func() (string, error) { return h.Table2().Render(), nil },
		"table3":   func() (string, error) { r, err := h.Table3(); return render(r, err) },
		"table4":   func() (string, error) { r, err := h.Table4(); return render(r, err) },
		"table5":   func() (string, error) { r, err := h.Table5(); return render(r, err) },
		"fig1":     func() (string, error) { r, err := h.Fig1(); return render(r, err) },
		"table6":   func() (string, error) { r, err := h.Exp1(); return render(r, err) },
		"fig2":     func() (string, error) { r, err := h.Exp2(); return render(r, err) },
		"table7":   func() (string, error) { r, err := h.Exp3(); return render(r, err) },
		"table8":   func() (string, error) { r, err := h.Exp4(rounds); return render(r, err) },
		"ablation": func() (string, error) { r, err := h.Ablation(); return render(r, err) },
	}
	for _, id := range ids {
		f, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		out, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
	}
	if re.enabled {
		opts := rankeval.Options{}
		if re.fast {
			opts = rankeval.Options{Bootstraps: 4, Seeds: 2, TopK: []int{4, 8}}
		}
		res, err := h.RankEval(opts)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if re.jsonPath != "" {
			if err := writeReport(res, re.jsonPath); err != nil {
				return fmt.Errorf("rank-eval report: %w", err)
			}
		}
	}
	if reportPath != "" {
		if err := writeReport(h.ReportSnapshot(), reportPath); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	if stageReport {
		fmt.Println("Pipeline stages")
		fmt.Print(h.StageReport().String())
		c := h.Store().Counters()
		fmt.Printf("store: %d upstream fetches, %d drive-days ingested, %d appends, %d snapshots\n",
			c.SeriesFetches, c.DaysIngested, c.Appends, c.Snapshots)
	}
	return nil
}

// writeReport serializes the robustness report to path ("-" = stdout).
func writeReport(snap any, path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	// Stage-and-rename: a failed write never leaves a partial report.
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp makes 0600 files; match os.Create's permissions.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// renderable is any experiment result with a text rendering.
type renderable interface{ Render() string }

func render(r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// order is the canonical experiment sequence for -exp all.
var order = []string{
	"table1", "table2", "table3", "table4", "fig1", "table5",
	"table6", "fig2", "table7", "table8", "ablation",
}

var aliases = map[string]string{
	"exp1": "table6", "exp2": "fig2", "exp3": "table7", "exp4": "table8",
}

func parseIDs(list string) ([]string, error) {
	if list == "all" {
		return order, nil
	}
	if list == "none" {
		// Used by -rank-eval without an explicit -exp: only the
		// ranker-evaluation harness runs.
		return nil, nil
	}
	var out []string
	for _, raw := range strings.Split(list, ",") {
		id := strings.TrimSpace(strings.ToLower(raw))
		if alias, ok := aliases[id]; ok {
			id = alias
		}
		if id == "" {
			continue
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments in %q", list)
	}
	return out, nil
}

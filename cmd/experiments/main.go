// Command experiments regenerates the tables and figures of the WEFR
// paper's evaluation on a simulated fleet.
//
// Usage:
//
//	experiments -exp all            # everything (slow at full scale)
//	experiments -exp table6         # just Exp#1
//	experiments -exp fig1,table5    # a subset
//	experiments -drives 8000        # scale the fleet up
//	experiments -fast               # reduced settings for a quick pass
//
// Experiment IDs: table1 table2 table3 table4 table5 table6 table7
// table8 fig1 fig2 (aliases exp1=table6, exp2=fig2, exp3=table7,
// exp4=table8).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids (see doc comment)")
		drives  = flag.Int("drives", 0, "fleet size override (0 = config default)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		fast    = flag.Bool("fast", false, "use the reduced test-scale configuration")
		rounds  = flag.Int("rounds", 5, "averaging rounds for table8 (paper: 20)")
		trees   = flag.Int("trees", 0, "prediction forest size override (paper: 100)")
		depth   = flag.Int("depth", 0, "prediction forest depth override (paper: 13)")
		phases  = flag.Int("phases", 0, "testing phase count (0 = all three)")
		workers = flag.Int("workers", 0, "parallel workers for extraction/fitting/scoring (0 = GOMAXPROCS, 1 = serial; results identical)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *fast {
		cfg = experiments.TestConfig()
	}
	cfg.Seed = *seed
	if *drives > 0 {
		cfg.TotalDrives = *drives
	}
	if *trees > 0 {
		cfg.Forest.NumTrees = *trees
	}
	if *depth > 0 {
		cfg.Forest.MaxDepth = *depth
	}
	cfg.PhaseCount = *phases
	cfg.Workers = *workers

	if err := run(cfg, *exp, *rounds); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, expList string, rounds int) error {
	ids, err := parseIDs(expList)
	if err != nil {
		return err
	}
	fmt.Printf("building fleet (%d drives, seed %d)...\n\n", cfg.TotalDrives, cfg.Seed)
	h, err := experiments.New(cfg)
	if err != nil {
		return err
	}

	runners := map[string]func() (string, error){
		"table1":   func() (string, error) { return h.Table1().Render(), nil },
		"table2":   func() (string, error) { return h.Table2().Render(), nil },
		"table3":   func() (string, error) { r, err := h.Table3(); return render(r, err) },
		"table4":   func() (string, error) { r, err := h.Table4(); return render(r, err) },
		"table5":   func() (string, error) { r, err := h.Table5(); return render(r, err) },
		"fig1":     func() (string, error) { r, err := h.Fig1(); return render(r, err) },
		"table6":   func() (string, error) { r, err := h.Exp1(); return render(r, err) },
		"fig2":     func() (string, error) { r, err := h.Exp2(); return render(r, err) },
		"table7":   func() (string, error) { r, err := h.Exp3(); return render(r, err) },
		"table8":   func() (string, error) { r, err := h.Exp4(rounds); return render(r, err) },
		"ablation": func() (string, error) { r, err := h.Ablation(); return render(r, err) },
	}
	for _, id := range ids {
		f, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		out, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
	}
	return nil
}

// renderable is any experiment result with a text rendering.
type renderable interface{ Render() string }

func render(r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// order is the canonical experiment sequence for -exp all.
var order = []string{
	"table1", "table2", "table3", "table4", "fig1", "table5",
	"table6", "fig2", "table7", "table8", "ablation",
}

var aliases = map[string]string{
	"exp1": "table6", "exp2": "fig2", "exp3": "table7", "exp4": "table8",
}

func parseIDs(list string) ([]string, error) {
	if list == "all" {
		return order, nil
	}
	var out []string
	for _, raw := range strings.Split(list, ",") {
		id := strings.TrimSpace(strings.ToLower(raw))
		if alias, ok := aliases[id]; ok {
			id = alias
		}
		if id == "" {
			continue
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments in %q", list)
	}
	return out, nil
}

package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
)

// benchServeLoad measures the online prediction service at
// saturation: it boots a daemon over a trained snapshot and a
// fully-ingested store, serves it on a loopback port, and runs an
// open-loop saturation scan mixing coalesced single-drive requests,
// kernel-direct batches, and whole-fleet passes. NsPerOp is the
// single-path p50 at the highest offered rate that held the SLO; the
// p99/p999 tails, per-path medians, and QPS at saturation land in
// Extra.
func benchServeLoad() (Result, error) {
	drives, trees, depth := 800, 30, 8
	stepDur, maxSteps := 1500*time.Millisecond, 6
	baseQPS := 100.0
	if quickMode {
		drives, trees, depth = 300, 8, 5
		stepDur, maxSteps = 400*time.Millisecond, 3
		baseQPS = 50
	}

	fleet, err := simulate.New(simulate.Config{
		TotalDrives: drives, Days: 120, Seed: 3, AFRScale: 4,
		Models: []smart.ModelID{smart.MC1},
	})
	if err != nil {
		return Result{}, err
	}
	src := dataset.FleetSource{Fleet: fleet}
	days := src.Days()
	ph := engine.Phase{TrainLo: 0, TrainHi: days - 31, TestLo: days - 30, TestHi: days - 1}
	cfg := pipeline.Config{
		Forest: forest.Config{NumTrees: trees, MaxDepth: depth, Seed: 3},
		Seed:   3,
	}
	res, err := engine.RunPhase(src, smart.MC1, pipeline.NoSelection{}, ph, cfg)
	if err != nil {
		return Result{}, err
	}
	snap, err := res.Snapshot()
	if err != nil {
		return Result{}, err
	}

	regDir, err := os.MkdirTemp("", "bench-serve-*")
	if err != nil {
		return Result{}, err
	}
	cleanups = append(cleanups, func() { os.RemoveAll(regDir) })
	reg := &core.Registry{Dir: regDir}
	if _, err := engine.SaveSnapshot(reg, "serving", snap); err != nil {
		return Result{}, err
	}
	st := store.Open(src, store.Options{})
	cleanups = append(cleanups, func() { st.Close() })
	if err := st.Track(smart.MC1); err != nil {
		return Result{}, err
	}
	if err := st.AppendThrough(days - 1); err != nil {
		return Result{}, err
	}

	s, err := serve.New(serve.Options{Registry: reg, Artifacts: []string{"serving"}, Store: st})
	if err != nil {
		return Result{}, err
	}
	cleanups = append(cleanups, s.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	cleanups = append(cleanups, func() { srv.Close() })

	spec := serve.LoadSpec{
		BaseQPS:       baseQPS,
		Duration:      stepDur,
		DiurnalPeriod: stepDur / 2,
		DiurnalAmp:    0.5,
		Seed:          3,
		Day:           days - 1,
		Cohorts: []serve.Cohort{
			{Name: "single", Artifact: "serving", Weight: 0.75, Path: "single"},
			{Name: "batch", Artifact: "serving", Weight: 0.2, Path: "batch", Batch: 64},
			{Name: "fleet", Artifact: "serving", Weight: 0.05, Path: "fleet"},
		},
	}
	client := &http.Client{Timeout: 30 * time.Second}
	sat, err := serve.SaturationScan(client, "http://"+ln.Addr().String(), spec, 1.6, maxSteps, 100*time.Millisecond)
	if err != nil {
		return Result{}, err
	}
	if len(sat.Steps) == 0 {
		return Result{}, fmt.Errorf("saturation scan produced no steps")
	}
	// The step to report from is the last one that held the SLO; when
	// even the first offered rate broke it, fall back to that step.
	held := len(sat.Steps) - 1
	if sat.Saturated && held > 0 {
		held--
	}
	rep := sat.Steps[held]
	single := rep.Paths["single"]
	// When even the first offered rate broke the SLO (tiny machines),
	// the achieved throughput of that step is the saturation estimate.
	satQPS := sat.SaturationQPS
	if satQPS == 0 {
		satQPS = rep.AchievedQPS
	}

	requests, errors := 0, 0
	shed, deadline := 0, 0
	for _, step := range sat.Steps {
		requests += step.Requests
		errors += step.Errors
		shed += step.Shed
		deadline += step.Deadline
	}
	// The overload envelope joins the latency trajectory: shed rate and
	// deadline-exceeded rate cover the whole scan (the knee steps are
	// where shedding happens), goodput is the held step's accepted QPS.
	shedRate, deadlineRate := 0.0, 0.0
	if requests > 0 {
		shedRate = float64(shed) / float64(requests)
		deadlineRate = float64(deadline) / float64(requests)
	}
	out := Result{
		NsPerOp: int64(single.P50Ms * 1e6),
		N:       requests,
		Extra: map[string]float64{
			"qps_saturation": satQPS,
			"p50_single_ms":  single.P50Ms,
			"p99_single_ms":  single.P99Ms,
			"p999_single_ms": single.P999Ms,
			"errors":         float64(errors),
			"saturated":      b2f(sat.Saturated),
			"goodput_qps":    rep.GoodputQPS,
			"shed_rate":      shedRate,
			"deadline_rate":  deadlineRate,
		},
	}
	if ps, ok := rep.Paths["batch"]; ok {
		out.Extra["p50_batch_ms"] = ps.P50Ms
		out.Extra["p99_batch_ms"] = ps.P99Ms
	}
	if ps, ok := rep.Paths["fleet"]; ok {
		out.Extra["p50_fleet_ms"] = ps.P50Ms
	}
	return out, nil
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

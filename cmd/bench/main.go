// Command bench runs the repository's hot-path performance benchmarks
// programmatically and records the results as a JSON report, so the
// performance trajectory is tracked in-repo from PR to PR.
//
// Usage:
//
//	bench                          # run all benches, write BENCH_<date>.json
//	bench -out results.json        # explicit output path
//	bench -baseline BENCH_old.json # embed a prior run and report speedups
//	bench -bench forest-fit        # run a single benchmark
//
// Benchmarks cover the training hot loop (forest-fit, gbdt-fit), batch
// scoring (forest-predict-batch), the daily fleet-scoring path the
// pipeline runs per testing phase (phase-score: frame materialization
// with feature expansion plus model scoring), and the simulator's
// series generation (series-gen).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/simulate"
	"repro/internal/smart"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	Speedup     float64 `json:"speedup_vs_baseline,omitempty"`
}

// Report is the BENCH_<date>.json layout.
type Report struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// Baseline carries the prior run this report is compared against
	// (the pre-optimization numbers), when -baseline is given.
	Baseline map[string]Result `json:"baseline,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "", "output path (default BENCH_<date>.json)")
		baseline = flag.String("baseline", "", "prior report to embed and compare against")
		only     = flag.String("bench", "", "run only the named benchmark")
	)
	flag.Parse()

	if err := run(*out, *baseline, *only); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

func run(out, baselinePath, only string) error {
	rep := Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Result{},
	}
	if baselinePath != "" {
		prior, err := readReport(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Baseline = prior.Benchmarks
	}

	for _, bm := range benches {
		if only != "" && bm.name != only {
			continue
		}
		fmt.Printf("%-22s ", bm.name)
		r := testing.Benchmark(bm.fn)
		res := Result{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if base, ok := rep.Baseline[bm.name]; ok && res.NsPerOp > 0 {
			res.Speedup = float64(base.NsPerOp) / float64(res.NsPerOp)
		}
		rep.Benchmarks[bm.name] = res
		fmt.Printf("%12d ns/op %10d B/op %8d allocs/op", res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.Speedup > 0 {
			fmt.Printf("   %.2fx vs baseline", res.Speedup)
		}
		fmt.Println()
	}
	if len(rep.Benchmarks) == 0 {
		names := make([]string, len(benches))
		for i, bm := range benches {
			names[i] = bm.name
		}
		return fmt.Errorf("no benchmark named %q (have: %s)", only, strings.Join(names, ", "))
	}

	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// --- benchmark definitions ---

var benches = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"forest-fit", benchForestFit},
	{"forest-predict-batch", benchForestPredictBatch},
	{"gbdt-fit", benchGBDTFit},
	{"phase-score", benchPhaseScore},
	{"series-gen", benchSeriesGen},
	{"series-gen-batch", benchSeriesGenBatch},
}

// synthData builds a deterministic frame-shaped dataset: one signal
// feature plus noise features, mimicking an expanded training frame.
func synthData(n, features int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	y = make([]int, n)
	signal := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.12 { // failure-frame-like class skew
			y[i] = 1
			signal[i] = 1.5 + rng.NormFloat64()
		} else {
			signal[i] = rng.NormFloat64()
		}
	}
	cols = make([][]float64, features)
	cols[0] = signal
	for f := 1; f < features; f++ {
		c := make([]float64, n)
		for i := range c {
			// Mix of continuous noise and low-cardinality counter-like
			// columns (heavy value ties, as in SMART data).
			if f%3 == 0 {
				c[i] = float64(rng.Intn(6))
			} else {
				c[i] = rng.NormFloat64() + 0.2*signal[i]
			}
		}
		cols[f] = c
	}
	return cols, y
}

// benchForestFit measures Random Forest training at bench scale
// (the dominant cost of Table III and Tables VI-VIII).
func benchForestFit(b *testing.B) {
	cols, y := synthData(4000, 60, 1)
	cfg := forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForestPredictBatch measures fleet-wide batch scoring with a
// fitted forest.
func benchForestPredictBatch(b *testing.B) {
	cols, y := synthData(4000, 60, 2)
	f, err := forest.Fit(cols, y, forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	scoreCols, _ := synthData(20000, 60, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.PredictProbaAll(scoreCols); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGBDTFit measures boosted-tree training at bench scale.
func benchGBDTFit(b *testing.B) {
	cols, y := synthData(3000, 60, 4)
	cfg := gbdt.Config{NumRounds: 25, MaxDepth: 6, Eta: 0.3, Lambda: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPhaseScore measures the pipeline's daily scoring path for one
// testing phase: materializing the every-day expanded frame for a
// 30-day window and scoring it with the phase model, as scorePhase
// does for validation and test periods.
func benchPhaseScore(b *testing.B) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 400, Seed: 7, AFRScale: 3})
	if err != nil {
		b.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})
	days := src.Days()

	trainFr, err := dataset.Frame(src, dataset.FrameOpts{
		Model: smart.MC1, DayLo: 0, DayHi: days - 61, NegEvery: 20, Expand: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	cols := make([][]float64, trainFr.NumFeatures())
	for i := range cols {
		cols[i] = trainFr.Col(i)
	}
	f, err := forest.Fit(cols, trainFr.Labels(), forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := dataset.Frame(src, dataset.FrameOpts{
			Model: smart.MC1, DayLo: days - 30, DayHi: days - 1, NegEvery: 1, Expand: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		scoreCols := make([][]float64, fr.NumFeatures())
		for j := range scoreCols {
			scoreCols[j] = fr.Col(j)
		}
		if _, err := f.PredictProbaAll(scoreCols); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSeriesGen measures simulator series generation across a fleet
// (the cost of materializing daily SMART logs for every drive).
func benchSeriesGen(b *testing.B) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 600, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var drives []simulate.Drive
	for _, m := range smart.AllModels() {
		drives = append(drives, fleet.DrivesOf(m)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range drives {
			if s := fleet.Series(d); s.LastDay < -1 {
				b.Fatal("bad series")
			}
		}
	}
}

// benchSeriesGenBatch measures SeriesAll: the same generation fanned
// across GOMAXPROCS workers with all series materialized at once. On a
// single-CPU host it degenerates to the serial loop plus the cost of
// holding the whole fleet's series live.
func benchSeriesGenBatch(b *testing.B) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 600, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var drives []simulate.Drive
	for _, m := range smart.AllModels() {
		drives = append(drives, fleet.DrivesOf(m)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range fleet.SeriesAll(drives, 0) {
			if s.LastDay < -1 {
				b.Fatal("bad series")
			}
		}
	}
}

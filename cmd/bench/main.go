// Command bench runs the repository's hot-path performance benchmarks
// programmatically and records the results as a JSON report, so the
// performance trajectory is tracked in-repo from PR to PR.
//
// Usage:
//
//	bench                          # run all benches, write BENCH_<date>.json
//	bench -out results.json        # explicit output path
//	bench -baseline BENCH_old.json # embed a prior run and report speedups
//	bench -bench forest-fit        # run a single benchmark
//	bench -quick                   # one iteration per bench (CI smoke)
//
// Benchmarks cover the training hot loop (forest-fit, gbdt-fit, and
// their histogram-binned variants forest-fit-hist / gbdt-fit-hist),
// batch scoring (forest-predict-batch), the daily fleet-scoring path
// the pipeline runs per testing phase (phase-score: frame
// materialization with feature expansion plus model scoring), the
// simulator's series generation (series-gen, series-gen-batch), and
// million-drive daily scoring through the compiled flat kernel over a
// disk-spilled columnar fleet (fleet-score; size it with
// -fleet-drives, default 1,000,000 or 50,000 under -quick), and the
// online prediction service at saturation (serve-load: an open-loop
// load scan over a loopback daemon, reporting p50/p99/p999 latency
// per request path and QPS at saturation), and the ranker-evaluation
// harness (rank-eval: internal/rankeval over every registered ranker
// plus the WEFR ensemble on a small fleet).
//
// After a run, the report is diffed against the most recent prior
// BENCH_*.json in the working directory (by modification time) and a
// per-benchmark delta table is printed, flagging any benchmark whose
// ns/op or allocs/op regressed by more than 10%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/flat"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/rankeval"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
	"repro/internal/textplot"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	Speedup     float64 `json:"speedup_vs_baseline,omitempty"`
	// Extra carries benchmark-specific metrics reported via
	// b.ReportMetric (e.g. fleet-score's "drives/sec").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_<date>.json layout.
type Report struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// Baseline carries the prior run this report is compared against
	// (the pre-optimization numbers), when -baseline is given.
	Baseline map[string]Result `json:"baseline,omitempty"`
}

func main() {
	// Register the testing flags (test.benchtime et al.) so -quick can
	// shorten the measurement loop through the standard mechanism.
	testing.Init()
	var (
		out      = flag.String("out", "", "output path (default BENCH_<date>.json, suffixed to avoid clobbering)")
		baseline = flag.String("baseline", "", "prior report to embed and compare against")
		only     = flag.String("bench", "", "run only the named benchmark")
		quick    = flag.Bool("quick", false, "run each benchmark for a single iteration (CI smoke test; numbers are noisy)")
		fleetN   = flag.Int("fleet-drives", 0, "fleet-score fleet size (default 1000000, or 50000 with -quick)")
	)
	flag.Parse()
	quickMode = *quick
	if *quick {
		if err := flag.Set("test.benchtime", "1x"); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
	switch {
	case *fleetN > 0:
		fleetDrives = *fleetN
	case *quick:
		fleetDrives = 50_000
	default:
		fleetDrives = 1_000_000
	}

	if err := run(*out, *baseline, *only); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

func run(out, baselinePath, only string) error {
	defer runCleanups()
	rep := Report{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Result{},
	}
	if baselinePath != "" {
		prior, err := readReport(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Baseline = prior.Benchmarks
	}

	for _, bm := range benches {
		if only != "" && bm.name != only {
			continue
		}
		fmt.Printf("%-22s ", bm.name)
		var res Result
		if bm.special != nil {
			var err error
			if res, err = bm.special(); err != nil {
				return fmt.Errorf("%s: %w", bm.name, err)
			}
		} else {
			r := testing.Benchmark(bm.fn)
			res = Result{
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				N:           r.N,
			}
			if len(r.Extra) > 0 {
				res.Extra = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					res.Extra[k] = v
				}
			}
		}
		if base, ok := rep.Baseline[bm.baselineName()]; ok && res.NsPerOp > 0 {
			res.Speedup = float64(base.NsPerOp) / float64(res.NsPerOp)
		}
		rep.Benchmarks[bm.name] = res
		fmt.Printf("%12d ns/op %10d B/op %8d allocs/op", res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if v, ok := res.Extra["drives/sec"]; ok {
			fmt.Printf("   %.0f drives/sec", v)
		}
		if v, ok := res.Extra["qps_saturation"]; ok {
			fmt.Printf("   %.0f qps@sat", v)
		}
		if res.Speedup > 0 {
			fmt.Printf("   %.2fx vs baseline", res.Speedup)
		}
		fmt.Println()
	}
	if len(rep.Benchmarks) == 0 {
		names := make([]string, len(benches))
		for i, bm := range benches {
			names[i] = bm.name
		}
		return fmt.Errorf("no benchmark named %q (have: %s)", only, strings.Join(names, ", "))
	}

	if out == "" {
		out = freshOutPath(rep.Date)
	}
	prior, path, err := latestPriorReport(".", out)
	switch {
	case err != nil:
		// A damaged prior report must not sink a benchmark run that
		// already finished measuring: warn, skip the delta, still write.
		fmt.Fprintf(os.Stderr, "bench: warning: skipping delta table: %v\n", err)
	case prior != nil:
		fmt.Printf("\ndelta vs %s:\n", path)
		fmt.Print(deltaTable(rep.Benchmarks, prior.Benchmarks))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(out, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// writeFileAtomic stages the data in a temp file and renames it into
// place, so a failed or interrupted run never leaves a partial report.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp makes 0600 files; match os.Create's permissions.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// freshOutPath picks the default output name, appending a numeric
// suffix when a same-day report already exists so prior runs are never
// clobbered.
func freshOutPath(date string) string {
	out := fmt.Sprintf("BENCH_%s.json", date)
	for n := 2; ; n++ {
		if _, err := os.Stat(out); os.IsNotExist(err) {
			return out
		}
		out = fmt.Sprintf("BENCH_%s.%d.json", date, n)
	}
}

// latestPriorReport loads the most recently modified BENCH_*.json in
// dir, excluding the upcoming output path. A nil report (with nil
// error) means there is no prior run to diff against; an error names
// the unreadable or corrupt file so the caller can warn about it.
func latestPriorReport(dir, out string) (*Report, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	best := ""
	var bestMod time.Time
	for _, m := range matches {
		if filepath.Clean(m) == filepath.Clean(out) {
			continue
		}
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		if best == "" || fi.ModTime().After(bestMod) {
			best, bestMod = m, fi.ModTime()
		}
	}
	if best == "" {
		return nil, "", nil
	}
	rep, err := readReport(best)
	if err != nil {
		return nil, "", fmt.Errorf("prior report %s: %w", best, err)
	}
	return &rep, best, nil
}

// deltaTable renders the per-benchmark comparison against a prior
// report. Histogram variants (absent from older reports) fall back to
// their exact-split counterpart's entry. A benchmark whose time or
// allocation count got more than 10% worse is flagged as a regression.
func deltaTable(cur, prior map[string]Result) string {
	var names []string
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows [][]string
	for _, name := range names {
		res := cur[name]
		baseName := name
		base, ok := prior[baseName]
		if !ok {
			baseName = strings.TrimSuffix(name, "-hist")
			base, ok = prior[baseName]
		}
		if !ok || base.NsPerOp <= 0 {
			rows = append(rows, []string{name, "-", fmt.Sprintf("%d", res.NsPerOp), "-",
				"-", fmt.Sprintf("%d", res.AllocsPerOp), "-", "new"})
			continue
		}
		nsDelta := 100 * (float64(res.NsPerOp) - float64(base.NsPerOp)) / float64(base.NsPerOp)
		allocDelta := 0.0
		if base.AllocsPerOp > 0 {
			allocDelta = 100 * (float64(res.AllocsPerOp) - float64(base.AllocsPerOp)) / float64(base.AllocsPerOp)
		}
		note := ""
		if baseName != name {
			note = "vs " + baseName
		}
		if nsDelta > 10 || allocDelta > 10 {
			note = strings.TrimSpace(note + " REGRESSION")
		}
		rows = append(rows, []string{name,
			fmt.Sprintf("%d", base.NsPerOp), fmt.Sprintf("%d", res.NsPerOp), fmt.Sprintf("%+.1f%%", nsDelta),
			fmt.Sprintf("%d", base.AllocsPerOp), fmt.Sprintf("%d", res.AllocsPerOp), fmt.Sprintf("%+.1f%%", allocDelta),
			note})
	}
	return textplot.Table([]string{"Benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs", ""}, rows)
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// --- benchmark definitions ---

// bench pairs a benchmark with an optional baseline alias: histogram
// variants compare against their exact-split counterpart's entry in
// older reports that predate the hist path.
type bench struct {
	name string
	fn   func(b *testing.B)
	base string
	// special replaces the testing.Benchmark harness for benchmarks
	// that measure something other than a tight loop (e.g. serve-load's
	// latency distribution under open-loop load).
	special func() (Result, error)
}

func (bm bench) baselineName() string {
	if bm.base != "" {
		return bm.base
	}
	return bm.name
}

var benches = []bench{
	{name: "forest-fit", fn: benchForestFit},
	{name: "forest-fit-hist", fn: benchForestFitHist, base: "forest-fit"},
	{name: "forest-predict-batch", fn: benchForestPredictBatch},
	{name: "gbdt-fit", fn: benchGBDTFit},
	{name: "gbdt-fit-hist", fn: benchGBDTFitHist, base: "gbdt-fit"},
	{name: "phase-score", fn: benchPhaseScore},
	{name: "series-gen", fn: benchSeriesGen},
	{name: "series-gen-batch", fn: benchSeriesGenBatch},
	{name: "fleet-score", fn: benchFleetScore},
	{name: "serve-load", special: benchServeLoad},
	{name: "rank-eval", fn: benchRankEval},
}

// cleanups are teardown hooks registered by benchmark setup (temp
// spill directories, open stores); run LIFO after the bench loop.
var cleanups []func()

func runCleanups() {
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
	cleanups = nil
}

// synthData builds a deterministic frame-shaped dataset: one signal
// feature plus noise features, mimicking an expanded training frame.
func synthData(n, features int, seed int64) (cols [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	y = make([]int, n)
	signal := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.12 { // failure-frame-like class skew
			y[i] = 1
			signal[i] = 1.5 + rng.NormFloat64()
		} else {
			signal[i] = rng.NormFloat64()
		}
	}
	cols = make([][]float64, features)
	cols[0] = signal
	for f := 1; f < features; f++ {
		c := make([]float64, n)
		for i := range c {
			// Mix of continuous noise and low-cardinality counter-like
			// columns (heavy value ties, as in SMART data).
			if f%3 == 0 {
				c[i] = float64(rng.Intn(6))
			} else {
				c[i] = rng.NormFloat64() + 0.2*signal[i]
			}
		}
		cols[f] = c
	}
	return cols, y
}

// benchForestFit measures Random Forest training at bench scale
// (the dominant cost of Table III and Tables VI-VIII).
func benchForestFit(b *testing.B) {
	cols, y := synthData(4000, 60, 1)
	cfg := forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForestFitHist measures the same forest training with the
// histogram-binned split search (internal/hist).
func benchForestFitHist(b *testing.B) {
	cols, y := synthData(4000, 60, 1)
	cfg := forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 1, SplitMethod: hist.SplitHist}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForestPredictBatch measures fleet-wide batch scoring with a
// fitted forest.
func benchForestPredictBatch(b *testing.B) {
	cols, y := synthData(4000, 60, 2)
	f, err := forest.Fit(cols, y, forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	scoreCols, _ := synthData(20000, 60, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.PredictProbaAll(scoreCols); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGBDTFit measures boosted-tree training at bench scale.
func benchGBDTFit(b *testing.B) {
	cols, y := synthData(3000, 60, 4)
	cfg := gbdt.Config{NumRounds: 25, MaxDepth: 6, Eta: 0.3, Lambda: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGBDTFitHist measures the same boosted-tree training with the
// histogram-binned split search (internal/hist).
func benchGBDTFitHist(b *testing.B) {
	cols, y := synthData(3000, 60, 4)
	cfg := gbdt.Config{NumRounds: 25, MaxDepth: 6, Eta: 0.3, Lambda: 1, SplitMethod: hist.SplitHist}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbdt.Fit(cols, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPhaseScore measures the pipeline's daily scoring path for one
// testing phase: materializing the every-day expanded frame for a
// 30-day window and scoring it with the phase model, as scorePhase
// does for validation and test periods.
func benchPhaseScore(b *testing.B) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 400, Seed: 7, AFRScale: 3})
	if err != nil {
		b.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})
	days := src.Days()

	trainFr, err := dataset.Frame(src, dataset.FrameOpts{
		Model: smart.MC1, DayLo: 0, DayHi: days - 61, NegEvery: 20, Expand: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	cols := make([][]float64, trainFr.NumFeatures())
	for i := range cols {
		cols[i] = trainFr.Col(i)
	}
	f, err := forest.Fit(cols, trainFr.Labels(), forest.Config{NumTrees: 30, MaxDepth: 12, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := dataset.Frame(src, dataset.FrameOpts{
			Model: smart.MC1, DayLo: days - 30, DayHi: days - 1, NegEvery: 1, Expand: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		scoreCols := make([][]float64, fr.NumFeatures())
		for j := range scoreCols {
			scoreCols[j] = fr.Col(j)
		}
		if _, err := f.PredictProbaAll(scoreCols); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSeriesGen measures simulator series generation across a fleet
// (the cost of materializing daily SMART logs for every drive).
func benchSeriesGen(b *testing.B) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 600, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var drives []simulate.Drive
	for _, m := range smart.AllModels() {
		drives = append(drives, fleet.DrivesOf(m)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range drives {
			if s := fleet.Series(d); s.LastDay < -1 {
				b.Fatal("bad series")
			}
		}
	}
}

// benchSeriesGenBatch measures SeriesAllBuf in the steady state of a
// repeated whole-fleet regeneration (the phase loop's usage): the same
// generation fanned across GOMAXPROCS workers with all series
// materialized at once, regenerating into a reused SeriesBuf so the
// fleet's column storage is allocated once, not per batch.
func benchSeriesGenBatch(b *testing.B) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 600, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var drives []simulate.Drive
	for _, m := range smart.AllModels() {
		drives = append(drives, fleet.DrivesOf(m)...)
	}
	var buf simulate.SeriesBuf
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range fleet.SeriesAllBuf(drives, 0, &buf) {
			if s.LastDay < -1 {
				b.Fatal("bad series")
			}
		}
	}
}

// --- fleet-score: million-drive daily scoring ---

// fleetDrives is the fleet-score fleet size, set from -fleet-drives.
var fleetDrives = 1_000_000

// quickMode mirrors -quick for benchmarks that size their own setup
// (serve-load shrinks its fleet, forest, and load steps under it).
var quickMode bool

// fleetFeats is the fleet benchmark's scoring feature set: wear and
// workload context plus the error counters that drive the paper's
// failure signal. Sorted by name so training columns line up with the
// spill file's column order (DayColumns returns features sorted).
var fleetFeats = func() []smart.Feature {
	fs := []smart.Feature{
		{Attr: smart.MWI, Kind: smart.Normalized},
		{Attr: smart.ARS, Kind: smart.Normalized},
		{Attr: smart.RER, Kind: smart.Normalized},
		{Attr: smart.POH, Kind: smart.Raw},
		{Attr: smart.PCC, Kind: smart.Raw},
		{Attr: smart.TLW, Kind: smart.Raw},
		{Attr: smart.RSC, Kind: smart.Raw},
		{Attr: smart.UCE, Kind: smart.Raw},
		{Attr: smart.PFC, Kind: smart.Raw},
		{Attr: smart.EFC, Kind: smart.Raw},
		{Attr: smart.PSC, Kind: smart.Raw},
		{Attr: smart.CEC, Kind: smart.Raw},
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].String() < fs[j].String() })
	return fs
}()

// fleetRowInto fills one drive's daily SMART reading. Healthy drives
// report exact-zero error counters almost always — the fleet's real
// sparsity, which lets tree traversal exit early for the overwhelming
// majority of the fleet — while at-risk drives show elevated counters
// and degraded normalized health values.
func fleetRowInto(rng *rand.Rand, atRisk bool, dst []float64) {
	for i, ft := range fleetFeats {
		var v float64
		switch ft.Attr {
		case smart.MWI:
			v = 97 - 40*rng.Float64()
			if atRisk {
				v = 60 - 35*rng.Float64()
			}
		case smart.ARS:
			v = 100
			if atRisk || rng.Float64() < 0.03 {
				v = 100 - float64(rng.Intn(40))
			}
		case smart.RER:
			v = 100 - 12*rng.Float64()
			if atRisk {
				v -= 30 * rng.Float64()
			}
		case smart.POH:
			v = float64(2000 + rng.Intn(30000))
		case smart.PCC:
			v = float64(rng.Intn(120))
		case smart.TLW:
			v = 1e6 * (1 + 50*rng.Float64())
		default: // error counters: RSC, UCE, PFC, EFC, PSC, CEC
			if atRisk {
				v = float64(1 + rng.Intn(400))
			} else if rng.Float64() < 0.015 {
				v = float64(1 + rng.Intn(4))
			}
		}
		dst[i] = v
	}
}

// fleetSource is a deterministic generate-on-demand single-day fleet:
// drive i's reading is a pure function of its ID, so a million-drive
// fleet costs no resident memory and spills in O(workers) space.
type fleetSource struct{ n int }

func (s fleetSource) Days() int { return 1 }

func (s fleetSource) DrivesOf(m smart.ModelID) []dataset.DriveRef {
	if m != smart.MC1 {
		return nil
	}
	refs := make([]dataset.DriveRef, s.n)
	for i := range refs {
		refs[i] = dataset.DriveRef{ID: i, Model: smart.MC1, FailDay: -1}
	}
	return refs
}

func (s fleetSource) Series(ref dataset.DriveRef) (map[smart.Feature][]float64, int, error) {
	rng := rand.New(rand.NewSource(0x5EED + int64(ref.ID)*1_664_525))
	atRisk := rng.Float64() < 0.02
	row := make([]float64, len(fleetFeats))
	fleetRowInto(rng, atRisk, row)
	cols := make(map[smart.Feature][]float64, len(fleetFeats))
	for i, ft := range fleetFeats {
		cols[ft] = row[i : i+1 : i+1]
	}
	return cols, 0, nil
}

// fleetTrainData draws a labeled training sample from the same
// generator, oversampling the at-risk profile to a 1:8 class mix.
func fleetTrainData(n int) (cols [][]float64, y []int) {
	cols = make([][]float64, len(fleetFeats))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	y = make([]int, n)
	row := make([]float64, len(fleetFeats))
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(7_700_000_001 + int64(i)*22_695_477))
		atRisk := i%8 == 0
		if atRisk {
			y[i] = 1
		}
		fleetRowInto(rng, atRisk, row)
		for f := range cols {
			cols[f][i] = row[f]
		}
	}
	return cols, y
}

// fleetState caches the expensive fleet-score fixture (trained model,
// spilled fleet, open store) across testing.Benchmark's calibration
// re-runs; the fleet size is fixed per process, so one setup serves
// every invocation.
var fleetState struct {
	once sync.Once
	err  error
	st   *store.Store
	fl   *flat.Forest
	out  []float64
	n    int
}

func fleetSetup() error {
	fleetState.once.Do(func() {
		fleetState.err = func() error {
			n := fleetDrives
			cols, y := fleetTrainData(6000)
			f, err := forest.Fit(cols, y, forest.Config{
				NumTrees: 30, MaxDepth: 8, MinLeafSamples: 64,
				Seed: 11, SplitMethod: hist.SplitHist, MaxBins: 64,
			})
			if err != nil {
				return err
			}
			fl, err := flat.CompileForest(f)
			if err != nil {
				return err
			}
			dir, err := os.MkdirTemp("", "bench-fleet-*")
			if err != nil {
				return err
			}
			cleanups = append(cleanups, func() { os.RemoveAll(dir) })
			src := fleetSource{n: n}
			if _, err := store.WriteSpill(dir, src, smart.MC1, runtime.GOMAXPROCS(0)); err != nil {
				return err
			}
			st := store.Open(src, store.Options{SpillDir: dir})
			if err := st.Track(smart.MC1); err != nil {
				return err
			}
			if err := st.AppendThrough(0); err != nil {
				return err
			}
			cleanups = append(cleanups, func() { st.Close() })
			fleetState.st, fleetState.fl, fleetState.n = st, fl, n
			fleetState.out = make([]float64, n)
			return nil
		}()
	})
	return fleetState.err
}

// rankEvalState caches the rank-eval fixture (a small simulated fleet)
// across testing.Benchmark's calibration re-runs.
var rankEvalState struct {
	once sync.Once
	err  error
	src  dataset.Source
}

// benchRankEval measures one full ranker-evaluation harness pass
// (internal/rankeval): bootstrap stability, cross-seed similarity, and
// AUC-vs-k for every registered ranker plus the WEFR ensemble on a
// small fleet — the cost of `experiments -rank-eval` per model.
func benchRankEval(b *testing.B) {
	rankEvalState.once.Do(func() {
		f, err := simulate.New(simulate.Config{
			TotalDrives: 500, Seed: 5, AFRScale: 4,
			Models: []smart.ModelID{smart.MC1},
		})
		if err != nil {
			rankEvalState.err = err
			return
		}
		rankEvalState.src = dataset.NewCachedSource(dataset.FleetSource{Fleet: f})
	})
	if rankEvalState.err != nil {
		b.Fatal(rankEvalState.err)
	}
	ph := engine.StandardPhases(rankEvalState.src.Days())[2]
	cfg := engine.Config{Forest: forest.Config{NumTrees: 8, MaxDepth: 6, Seed: 1}, NegEvery: 40, Seed: 1}
	opts := rankeval.Options{Seed: 3, Bootstraps: 3, Seeds: 2, TopK: []int{3, 6}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rankeval.Run(rankEvalState.src, smart.MC1, ph, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if len(row.Errors) > 0 {
				b.Fatalf("%s: %v", row.Name, row.Errors)
			}
		}
	}
}

// benchFleetScore measures the full daily fleet-scoring path at
// -fleet-drives scale: materialize today's columns zero-copy from the
// spilled fleet, score every drive through the compiled flat forest,
// and sweep the alarm threshold — the steady-state work of scoring a
// million-drive deployment each day.
func benchFleetScore(b *testing.B) {
	if err := fleetSetup(); err != nil {
		b.Fatal(err)
	}
	snap := fleetState.st.Snapshot()
	alarms := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cols, refs, err := snap.DayColumns(smart.MC1, 0)
		if err != nil {
			b.Fatal(err)
		}
		out := fleetState.out[:len(refs)]
		if err := fleetState.fl.PredictProbaBatch(cols, out); err != nil {
			b.Fatal(err)
		}
		alarms = 0
		for _, p := range out {
			if p >= 0.5 {
				alarms++
			}
		}
	}
	b.StopTimer()
	if alarms == 0 || alarms > fleetState.n/4 {
		b.Fatalf("implausible alarm count %d of %d drives", alarms, fleetState.n)
	}
	b.ReportMetric(float64(fleetState.n)*float64(b.N)*1e9/float64(b.Elapsed().Nanoseconds()), "drives/sec")
}

package main

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestLatestPriorReport is the graceful-degradation table for the
// delta baseline: a missing prior is not an error, a valid prior
// loads, and a corrupt or unreadable prior surfaces an error naming
// the file — which run() downgrades to a warning instead of failing
// the whole benchmark run.
func TestLatestPriorReport(t *testing.T) {
	valid := `{"date": "2026-01-01", "benchmarks": {"forest-fit": {"ns_per_op": 100}}}`
	cases := []struct {
		name     string
		files    map[string]string
		unread   string // file to make unreadable (chmod 0)
		wantNil  bool
		wantErr  string
		wantPath string
	}{
		{name: "no prior", files: nil, wantNil: true},
		{
			name:     "valid prior",
			files:    map[string]string{"BENCH_2026-01-01.json": valid},
			wantPath: "BENCH_2026-01-01.json",
		},
		{
			name:    "corrupt prior",
			files:   map[string]string{"BENCH_2026-01-02.json": `{"benchmarks": truncated`},
			wantErr: "BENCH_2026-01-02.json",
		},
		{
			name:    "unreadable prior",
			files:   map[string]string{"BENCH_2026-01-03.json": valid},
			unread:  "BENCH_2026-01-03.json",
			wantErr: "BENCH_2026-01-03.json",
		},
		{
			name: "output path excluded",
			files: map[string]string{
				"BENCH_today.json": `not json at all`, // the run's own output: ignored
			},
			wantNil: true,
		},
		{
			name: "newest prior wins",
			files: map[string]string{
				"BENCH_2026-01-01.json": `corrupt old`,
				"BENCH_2026-01-05.json": valid,
			},
			wantPath: "BENCH_2026-01-05.json",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			now := time.Now()
			names := make([]string, 0, len(c.files))
			for name := range c.files {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				path := filepath.Join(dir, name)
				if err := os.WriteFile(path, []byte(c.files[name]), 0o644); err != nil {
					t.Fatal(err)
				}
				// Lexical name order sets the mtimes, so "newest" is
				// deterministic.
				now = now.Add(time.Second)
				if err := os.Chtimes(path, now, now); err != nil {
					t.Fatal(err)
				}
			}
			if c.unread != "" {
				if os.Getuid() == 0 {
					t.Skip("chmod 0 is not enforceable as root")
				}
				if err := os.Chmod(filepath.Join(dir, c.unread), 0); err != nil {
					t.Fatal(err)
				}
			}
			prior, path, err := latestPriorReport(dir, filepath.Join(dir, "BENCH_today.json"))
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want mention of %s", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.wantNil {
				if prior != nil {
					t.Fatalf("prior = %+v, want nil", prior)
				}
				return
			}
			if prior == nil || filepath.Base(path) != c.wantPath {
				t.Fatalf("prior from %q, want %q", path, c.wantPath)
			}
			if prior.Benchmarks["forest-fit"].NsPerOp != 100 {
				t.Errorf("loaded report: %+v", prior)
			}
		})
	}
}

// TestWriteFileAtomic verifies the report write never leaves a partial
// file: the target either has the full payload or (on failure) does
// not exist, and no temp files linger.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := writeFileAtomic(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// Overwrite is atomic too.
	if err := writeFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "second" {
		t.Fatalf("after overwrite: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d entries in dir, want 1 (temp leak?)", len(entries))
	}
	// A write into a missing directory fails without creating anything.
	missing := filepath.Join(dir, "no", "such", "dir", "x.json")
	if err := writeFileAtomic(missing, []byte("x")); err == nil {
		t.Error("write into missing directory succeeded")
	}
	if _, err := os.Stat(missing); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("partial output exists: %v", err)
	}
}

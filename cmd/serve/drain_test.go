package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGracefulDrain proves the SIGTERM drain end to end in a real
// subprocess: a request whose body is still arriving when the signal
// lands must complete with a 200 during the drain window, and the
// process must exit 0 after printing the drain banners.
//
// The test re-execs itself (SERVE_DRAIN_CHILD=1) so the child runs
// run() with its own signal handling, exactly as the shipped binary
// does; the parent drives it over a raw TCP connection so it can hold
// the request half-sent across the signal.
func TestGracefulDrain(t *testing.T) {
	if os.Getenv("SERVE_DRAIN_CHILD") == "1" {
		drainChild(t)
		return
	}
	if testing.Short() {
		t.Skip("subprocess drain test skipped in -short")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestGracefulDrain$", "-test.v")
	cmd.Env = append(os.Environ(), "SERVE_DRAIN_CHILD=1", "SERVE_DRAIN_DIR="+dir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Forward the child's stderr line by line; the daemon narrates its
	// lifecycle there ("listening on", "draining", "drained").
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitLine := func(substr string, timeout time.Duration) string {
		t.Helper()
		deadline := time.After(timeout)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("child stderr closed before %q", substr)
				}
				if strings.Contains(ln, substr) {
					return ln
				}
			case <-deadline:
				t.Fatalf("child never printed %q", substr)
			}
		}
	}

	// Bootstrap training runs in the child before it listens; allow for
	// slow -race CI machines.
	ln := waitLine("listening on", 90*time.Second)
	addr := ln[strings.Index(ln, "listening on ")+len("listening on "):]
	if i := strings.Index(addr, ","); i >= 0 {
		addr = addr[:i]
	}

	// Hold a fleet-score request in flight: send the headers and half
	// the JSON body, then stop. The handler is now parked reading the
	// body, so the request is active when the signal lands.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := `{"model":"serving","day":89}`
	half := len(body) / 2
	req := fmt.Sprintf("POST /v1/score/fleet HTTP/1.1\r\nHost: drain\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body[:half])
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	// Give the server time to read the headers and enter the handler —
	// a connection with no active request would be closed, not drained.
	time.Sleep(300 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitLine("draining", 10*time.Second)

	// The listener is closed and the drain clock is running; finishing
	// the body must still yield a full 200 response.
	if _, err := conn.Write([]byte(body[half:])); err != nil {
		t.Fatalf("write rest of body during drain: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("read response during drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight request during drain: HTTP %d; want 200", resp.StatusCode)
	}

	waitLine("drained, exiting", 15*time.Second)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child did not exit 0 after drain: %v", err)
	}
}

// drainChild is the re-exec'd body of TestGracefulDrain: a tiny
// bootstrap-and-serve run() on a loopback port, torn down by the
// parent's SIGTERM. A non-nil run error fails the child test, which
// the parent observes as a non-zero exit.
func drainChild(t *testing.T) {
	o := options{
		Dir:             os.Getenv("SERVE_DRAIN_DIR"),
		Artifacts:       "serving",
		Addr:            "127.0.0.1:0",
		Model:           "MC1",
		Drives:          60,
		Days:            90,
		Seed:            1,
		AFRScale:        3,
		Trees:           4,
		Depth:           4,
		Bootstrap:       true,
		DefaultDeadline: 30 * time.Second,
		DrainTimeout:    10 * time.Second,
	}
	if err := run(o, os.Stdout); err != nil {
		t.Fatalf("child run: %v", err)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// baseOptions is a small, fast option set for end-to-end CLI runs.
func baseOptions(t *testing.T) options {
	return options{
		Dir: t.TempDir(), Artifacts: "serving", Model: "MC1",
		Drives: 150, Days: 120, Seed: 1, AFRScale: 4,
		Trees: 4, Depth: 4, Bootstrap: true,
		Loadgen: true, QPS: 300, LoadFor: 400 * time.Millisecond,
		Period: 200 * time.Millisecond, Amp: 0.5,
	}
}

// TestRunLoadgen exercises the whole CLI end to end: bootstrap-train
// version 1, serve on loopback, generate mixed-path load against
// self, and print a well-formed error-free JSON report.
func TestRunLoadgen(t *testing.T) {
	o := baseOptions(t)
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Requests == 0 {
		t.Fatal("load run issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d of %d requests errored:\n%s", rep.Errors, rep.Requests, out.String())
	}
	if len(rep.Paths) == 0 {
		t.Fatal("report has no per-path stats")
	}

	// A second run against the same registry must reuse version 1, not
	// retrain — even without -bootstrap.
	o.Bootstrap = false
	o.LoadFor = 100 * time.Millisecond
	out.Reset()
	if err := run(o, &out); err != nil {
		t.Fatalf("second run against existing registry: %v", err)
	}
}

// TestRunRejectsBadOptions audits the CLI's failure paths.
func TestRunRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantSub string
	}{
		{"unknown model", func(o *options) { o.Model = "MX9" }, "MX9"},
		{"missing dir", func(o *options) { o.Dir = "" }, "-dir"},
		{"empty registry without bootstrap", func(o *options) { o.Bootstrap = false }, "-bootstrap"},
		{"training span too large", func(o *options) { o.TrainDays = 500 }, "span"},
	}
	for _, tc := range cases {
		o := baseOptions(t)
		tc.mutate(&o)
		err := run(o, &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s: run succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

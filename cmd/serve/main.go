// Command serve runs the online prediction service: a long-lived
// daemon that loads model snapshots from a registry, answers
// per-drive, batch, and whole-fleet scoring requests over HTTP/JSON,
// and admits streaming SMART telemetry into its columnar store.
//
// Single-drive requests are micro-batched: a request queues its
// feature row in a per-group coalescer that flushes to the compiled
// scoring kernel when the batch fills or ages out, so the hot path is
// allocation-free at steady state. Snapshot promotions (e.g. by the
// continuous-operation controller writing new registry versions) go
// live through an atomic hot swap — in-flight requests finish on the
// snapshot they started with, new requests pick up the new one, and
// every response echoes the (version, config-hash) identity it was
// scored under.
//
// Usage:
//
//	serve -dir runs/mc1/registry -bootstrap             # train v1 if absent, serve on :8089
//	serve -dir runs/mc1/registry -watch 2s              # pick up controller promotions live
//	serve -dir runs/mc1/registry -bootstrap -loadgen -qps 800 -load-for 5s
//	serve -dir runs/mc1/registry -bootstrap -loadgen -saturate
//
// With -loadgen the daemon serves itself on a loopback port, drives
// open-loop Poisson traffic (optionally diurnally modulated) against
// its own endpoints, and prints a latency/throughput report as JSON
// instead of staying up.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
)

// options are the CLI parameters of one serve run.
type options struct {
	Dir       string
	Artifacts string
	Addr      string
	Model     string
	Drives    int
	Days      int
	Seed      int64
	AFRScale  float64
	Trees     int
	Depth     int
	Workers   int
	Bootstrap bool
	TrainDays int
	Ingest    int
	Watch     time.Duration
	Batch     int
	MaxDelay  time.Duration

	MaxInflight      int
	DefaultDeadline  time.Duration
	DegradedOK       bool
	DrainTimeout     time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration

	Loadgen  bool
	QPS      float64
	LoadFor  time.Duration
	Period   time.Duration
	Amp      float64
	Saturate bool
	SLOP99   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.Dir, "dir", "", "snapshot registry directory (required)")
	flag.StringVar(&o.Artifacts, "artifact", "serving", "comma-separated registry artifact names to serve")
	flag.StringVar(&o.Addr, "addr", ":8089", "listen address")
	flag.StringVar(&o.Model, "model", "MC1", "drive model served from the simulated fleet store")
	flag.IntVar(&o.Drives, "drives", 2000, "synthetic fleet size backing the store")
	flag.IntVar(&o.Days, "days", 0, "simulated span in days (0 = simulator default)")
	flag.Int64Var(&o.Seed, "seed", 1, "seed")
	flag.Float64Var(&o.AFRScale, "afr-scale", 3, "failure densifier")
	flag.IntVar(&o.Trees, "trees", 50, "bootstrap forest size")
	flag.IntVar(&o.Depth, "depth", 10, "bootstrap forest depth")
	flag.IntVar(&o.Workers, "workers", 0, "parallelism (0 = all cores)")
	flag.BoolVar(&o.Bootstrap, "bootstrap", false, "train and save version 1 of any artifact the registry does not hold yet")
	flag.IntVar(&o.TrainDays, "train-days", 0, "bootstrap training span in days (0 = all but the last 30)")
	flag.IntVar(&o.Ingest, "ingest-through", 0, "admit source days [0, N] at boot (0 = the full span); later days arrive via POST /v1/ingest")
	flag.DurationVar(&o.Watch, "watch", 0, "poll the registry at this interval and hot-swap new versions (0 = manual /v1/reload only)")
	flag.IntVar(&o.Batch, "batch", 0, "coalescer flush size in rows (0 = default)")
	flag.DurationVar(&o.MaxDelay, "max-delay", 0, "coalescer flush age (0 = default)")
	flag.IntVar(&o.MaxInflight, "max-inflight", 0, "concurrent single-drive requests admitted (0 = default 256); batch/fleet/ingest caps scale from defaults")
	flag.DurationVar(&o.DefaultDeadline, "default-deadline", 0, "per-request deadline when the client sends no X-Deadline-Ms (0 = default 2s)")
	flag.BoolVar(&o.DegradedOK, "degraded-ok", false, "report ready on /readyz even while degraded (breaker open or registry stale)")
	flag.DurationVar(&o.DrainTimeout, "drain-timeout", 10*time.Second, "bound on draining in-flight requests at SIGTERM/SIGINT")
	flag.IntVar(&o.BreakerThreshold, "breaker-threshold", 0, "consecutive store failures that trip the circuit breaker (0 = default 5)")
	flag.DurationVar(&o.BreakerCooldown, "breaker-cooldown", 0, "breaker open interval before a half-open probe (0 = default 2s)")

	flag.BoolVar(&o.Loadgen, "loadgen", false, "serve on loopback, generate load against self, print a JSON report, and exit")
	flag.Float64Var(&o.QPS, "qps", 500, "loadgen mean arrival rate")
	flag.DurationVar(&o.LoadFor, "load-for", 5*time.Second, "loadgen span (per step when -saturate)")
	flag.DurationVar(&o.Period, "diurnal-period", 4*time.Second, "loadgen diurnal modulation period (0 = flat rate)")
	flag.Float64Var(&o.Amp, "diurnal-amp", 0.5, "loadgen diurnal modulation amplitude in [0, 1)")
	flag.BoolVar(&o.Saturate, "saturate", false, "escalate offered load until the service saturates; report the knee")
	flag.DurationVar(&o.SLOP99, "slo-p99", 100*time.Millisecond, "p99 latency SLO for the saturation scan")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	model, err := smart.ParseModel(o.Model)
	if err != nil {
		return err
	}
	if o.Dir == "" {
		return fmt.Errorf("-dir is required")
	}
	names := strings.Split(o.Artifacts, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	reg := &core.Registry{Dir: o.Dir}

	fleet, err := simulate.New(simulate.Config{
		TotalDrives: o.Drives, Days: o.Days, Seed: o.Seed, AFRScale: o.AFRScale,
		Models: []smart.ModelID{model},
	})
	if err != nil {
		return err
	}
	src := dataset.FleetSource{Fleet: fleet}
	st := store.Open(src, store.Options{Workers: o.Workers})
	defer st.Close()
	if err := st.Track(model); err != nil {
		return err
	}
	ingest := o.Ingest
	if ingest <= 0 || ingest >= src.Days() {
		ingest = src.Days() - 1
	}
	if err := st.AppendThrough(ingest); err != nil {
		return err
	}

	for _, name := range names {
		v, err := reg.LatestVersion(name)
		if err != nil {
			return err
		}
		if v > 0 {
			continue
		}
		if !o.Bootstrap {
			return fmt.Errorf("artifact %q has no version in %s (use -bootstrap to train one)", name, o.Dir)
		}
		if err := bootstrap(reg, name, src, model, o); err != nil {
			return fmt.Errorf("bootstrap %q: %w", name, err)
		}
	}

	s, err := serve.New(serve.Options{
		Registry: reg, Artifacts: names, Store: st,
		MaxBatch: o.Batch, MaxDelay: o.MaxDelay, Workers: o.Workers,
		MaxInflightSingle: o.MaxInflight,
		DefaultDeadline:   o.DefaultDeadline,
		DegradedOK:        o.DegradedOK,
		BreakerThreshold:  o.BreakerThreshold,
		BreakerCooldown:   o.BreakerCooldown,
		BreakerSeed:       o.Seed,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	if o.Watch > 0 {
		s.Watch(o.Watch, func(err error) {
			fmt.Fprintf(os.Stderr, "serve: watch: %v\n", err)
		})
	}

	if o.Loadgen {
		return runLoadgen(o, s, ingest, names, out)
	}

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s, artifacts %s, horizon %d\n",
		ln.Addr(), strings.Join(names, ","), st.Horizon())
	srv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight requests (and
		// their coalescer flushes) finish within the drain budget, then
		// exit 0. The deferred s.Close drains the coalescers after the
		// HTTP layer quiesces.
		if o.DrainTimeout <= 0 {
			o.DrainTimeout = 10 * time.Second
		}
		fmt.Fprintf(os.Stderr, "serve: signal received, draining (timeout %s)\n", o.DrainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), o.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Fprintf(os.Stderr, "serve: drained, exiting\n")
		return nil
	case err := <-errc:
		return err
	}
}

// bootstrap trains version 1 of an artifact on the simulated fleet's
// early history — WEFR feature selection over a train span ending 30
// days before the simulated horizon, so served snapshots always have
// post-training days to score.
func bootstrap(reg *core.Registry, name string, src dataset.Source, model smart.ModelID, o options) error {
	days := src.Days()
	train := o.TrainDays
	if train <= 0 {
		train = days - 30
	}
	if train < 2 || train >= days {
		return fmt.Errorf("training span %d does not fit %d simulated days", train, days)
	}
	testHi := train + 29
	if testHi > days-1 {
		testHi = days - 1
	}
	ph := engine.Phase{TrainLo: 0, TrainHi: train - 1, TestLo: train, TestHi: testHi}
	cfg := pipeline.Config{
		Forest:  forest.Config{NumTrees: o.Trees, MaxDepth: o.Depth, Seed: o.Seed},
		Workers: o.Workers,
		Seed:    o.Seed,
	}
	fmt.Fprintf(os.Stderr, "serve: bootstrapping %q: training on days [0, %d]\n", name, train-1)
	res, err := engine.RunPhase(src, model, pipeline.WEFR{}, ph, cfg)
	if err != nil {
		return err
	}
	snap, err := res.Snapshot()
	if err != nil {
		return err
	}
	v, err := engine.SaveSnapshot(reg, name, snap)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: saved %q v%d (config %s)\n", name, v, snap.ConfigHash)
	return nil
}

// runLoadgen serves the daemon on a loopback port, fires the load
// generator at it, and prints the report as JSON.
func runLoadgen(o options, s *serve.Server, day int, names []string, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	spec := serve.LoadSpec{
		BaseQPS:       o.QPS,
		Duration:      o.LoadFor,
		DiurnalPeriod: o.Period,
		DiurnalAmp:    o.Amp,
		Cohorts:       defaultCohorts(names),
		Seed:          o.Seed,
		Day:           day,
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var report any
	if o.Saturate {
		report, err = serve.SaturationScan(client, base, spec, 1.6, 6, o.SLOP99)
	} else {
		report, err = serve.RunLoad(client, base, spec)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// defaultCohorts is the loadgen request mix per served artifact:
// mostly coalesced single-drive traffic, some kernel-direct batches,
// an occasional whole-fleet pass.
func defaultCohorts(names []string) []serve.Cohort {
	var out []serve.Cohort
	for _, name := range names {
		out = append(out,
			serve.Cohort{Name: name + "/single", Artifact: name, Weight: 0.75, Path: "single"},
			serve.Cohort{Name: name + "/batch", Artifact: name, Weight: 0.2, Path: "batch", Batch: 64},
			serve.Cohort{Name: name + "/fleet", Artifact: name, Weight: 0.05, Path: "fleet"},
		)
	}
	return out
}

// Command wefr runs Wear-out-updating Ensemble Feature Ranking over a
// dataset and prints the selected learning features: the per-approach
// rankings, the outlier-removal decision, the automatically determined
// feature count, and — when the survival curve has a significant change
// point — the per-wear-group selections.
//
// The dataset is either a synthetic fleet (default) or CSV files
// written by ssdgen / adapted from the released Alibaba dataset:
//
//	wefr -model MC1 -drives 4000 -seed 1
//	wefr -model MC1 -smart data/smart_MC1.csv -tickets data/tickets.csv
//
// With -faults the dataset is corrupted deterministically before
// selection and the ensemble runs in robust mode (failed rankers are
// dropped like outliers):
//
//	wefr -model MC1 -faults "gaps=0.02,nan=0.01"
//
// -rankers swaps the ensemble's preliminary approaches for any set of
// registered rankers (see internal/selection's registry); empty keeps
// the paper's five. Unknown names exit nonzero listing the registered
// ones:
//
//	wefr -model MC1 -rankers pearson,mutual-info,svm-margin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/hist"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
	"repro/internal/survival"
	"repro/internal/textplot"
)

func main() {
	var (
		model     = flag.String("model", "MC1", "drive model to select features for")
		drives    = flag.Int("drives", 4000, "synthetic fleet size (ignored with -smart)")
		seed      = flag.Int64("seed", 1, "seed for the synthetic fleet and rankers")
		afrScale  = flag.Float64("afr-scale", 3, "synthetic failure densifier (ignored with -smart)")
		smartCSV  = flag.String("smart", "", "SMART log CSV (ssdgen layout); empty = simulate")
		tickets   = flag.String("tickets", "", "failure tickets CSV (required with -smart)")
		negEvery  = flag.Int("neg-every", 15, "negative drive-day sampling stride")
		noUpdate  = flag.Bool("no-update", false, "skip the wear-out-updating step")
		faultSpec = flag.String("faults", "", `fault-injection spec, e.g. "gaps=0.02,nan=0.01" (enables robust mode)`)
		splitStr  = flag.String("split-method", "exact", "tree split search for the ranker ensembles: exact (presorted, bit-stable) or hist (histogram-binned, faster)")
		rankers   = flag.String("rankers", "", "comma-separated registry specs of the preliminary approaches (empty = the paper's five)")
	)
	flag.Parse()

	if err := run(*model, *drives, *seed, *afrScale, *smartCSV, *tickets, *negEvery, *noUpdate, *faultSpec, *splitStr, *rankers); err != nil {
		fmt.Fprintf(os.Stderr, "wefr: %v\n", err)
		os.Exit(1)
	}
}

func run(modelName string, drives int, seed int64, afrScale float64, smartCSV, ticketCSV string, negEvery int, noUpdate bool, faultSpec, splitMethod, rankerList string) error {
	model, err := smart.ParseModel(modelName)
	if err != nil {
		return err
	}
	sm, err := hist.ParseSplitMethod(splitMethod)
	if err != nil {
		return err
	}
	rankerSpecs, err := parseRankers(rankerList, sm)
	if err != nil {
		return err
	}
	var faultCfg faults.Config
	if faultSpec != "" {
		faultCfg, err = faults.ParseSpec(faultSpec)
		if err != nil {
			return err
		}
	}

	var src dataset.Source
	if smartCSV != "" {
		logs, err := loadCSV(smartCSV, ticketCSV)
		if err != nil {
			return err
		}
		if logs.Model() != model {
			return fmt.Errorf("CSV contains model %v, requested %v", logs.Model(), model)
		}
		src = logs
	} else {
		fleet, err := simulate.New(simulate.Config{TotalDrives: drives, Seed: seed, AFRScale: afrScale})
		if err != nil {
			return err
		}
		src = dataset.FleetSource{Fleet: fleet}
	}

	var injector *faults.Injector
	coreCfg := core.Config{Seed: seed, SplitMethod: sm, RankerSpecs: rankerSpecs}
	frameOpts := dataset.FrameOpts{Model: model, NegEvery: negEvery}
	var counter dataset.DefectCounter
	if faultCfg.Enabled() {
		injector = faults.New(src, faultCfg)
		src = injector
		coreCfg.Robust = &core.RobustConfig{}
		frameOpts.Sanitize = &dataset.SanitizeOpts{Counter: &counter}
	}

	// All reads go through an append-only fleet store: one upstream
	// fetch per drive, shared by the selection frame and the survival
	// curve.
	st := store.Open(src, store.Options{})
	if err := st.AppendThrough(src.Days() - 1); err != nil {
		return err
	}
	src = st.Snapshot()

	fr, err := dataset.Frame(src, frameOpts)
	if err != nil {
		return err
	}
	fmt.Printf("model %v: %d samples (%d positive), %d learning features\n\n",
		model, fr.NumRows(), fr.Positives(), fr.NumFeatures())

	curve := survival.Curve{}
	if !noUpdate {
		curve, err = survival.Compute(src, model, 0)
		if err != nil {
			return err
		}
	}
	res, err := core.Select(fr, curve, coreCfg)
	if err != nil {
		return err
	}

	if injector != nil {
		printFaults(injector.Stats(), counter.Snapshot(), res.Notes)
	}
	printSelection("Global selection (all SSDs)", res.Global)
	if res.Split == nil {
		fmt.Println("No significant survival change point: single feature set.")
		return nil
	}
	fmt.Printf("Survival change point at MWI_N = %.0f (z = %.1f)\n\n", res.Split.ThresholdMWI, res.Split.Z)
	printSelection(fmt.Sprintf("Low wear group (MWI_N < %.0f)", res.Split.ThresholdMWI), res.Split.Low)
	printSelection(fmt.Sprintf("High wear group (MWI_N >= %.0f)", res.Split.ThresholdMWI), res.Split.High)
	return nil
}

// parseRankers parses the -rankers list and resolves every spec
// against the selection registry, so an unknown ranker fails the run
// before any dataset work with the registered names in the error. An
// empty list returns nil — the paper's five.
func parseRankers(list string, sm hist.SplitMethod) ([]string, error) {
	if list == "" {
		return nil, nil
	}
	var out []string
	for _, raw := range strings.Split(list, ",") {
		spec := strings.TrimSpace(raw)
		if spec == "" {
			continue
		}
		if _, err := selection.Resolve(spec, 0, sm); err != nil {
			return nil, fmt.Errorf("-rankers: %w", err)
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rankers: no rankers in %q", list)
	}
	return out, nil
}

func loadCSV(smartCSV, ticketCSV string) (*dataset.Logs, error) {
	f, err := os.Open(smartCSV)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	logs, err := dataset.ReadModelCSV(f)
	if err != nil {
		return nil, err
	}
	if ticketCSV != "" {
		tf, err := os.Open(ticketCSV)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		tickets, err := dataset.ReadTicketsCSV(tf)
		if err != nil {
			return nil, err
		}
		logs.ApplyTickets(tickets)
	}
	return logs, nil
}

// printFaults summarizes injected defects, what the sanitizer did
// about them, and degradation decisions taken during selection.
func printFaults(st faults.Stats, det dataset.DefectStats, notes []string) {
	fmt.Println("Fault injection")
	var rows [][]string
	for _, c := range [...]struct {
		name  string
		count int
	}{
		{"gap_days", st.GapDays},
		{"dropout_columns", st.DropoutColumns},
		{"stuck_runs", st.StuckRuns},
		{"dup_days", st.DupDays},
		{"swap_pairs", st.SwapPairs},
		{"nan_cells", st.NaNCells},
		{"sentinel_cells", st.SentinelCells},
		{"tickets_delayed", st.TicketsDelayed},
		{"tickets_dropped", st.TicketsDropped},
	} {
		if c.count > 0 {
			rows = append(rows, []string{c.name, fmt.Sprintf("%d", c.count)})
		}
	}
	fmt.Print(textplot.Table([]string{"Injected defect", "Count"}, rows))
	fmt.Printf("Sanitizer: %d sentinel cells scrubbed, %d cells imputed, %d residual missing\n",
		det.SentinelCells, det.ImputedCells, det.ResidualCells)
	for _, n := range notes {
		fmt.Printf("Degradation: %s\n", n)
	}
	fmt.Println()
}

func printSelection(title string, sel core.Selection) {
	fmt.Println(title)
	var rows [][]string
	for _, rep := range sel.Rankers {
		status := "kept"
		if rep.Outlier {
			status = "discarded (outlier)"
		}
		rows = append(rows, []string{rep.Name, fmt.Sprintf("%.1f", rep.MeanDistance), status})
	}
	fmt.Print(textplot.Table([]string{"Approach", "Mean Kendall distance", "Status"}, rows))
	fmt.Printf("Selected %d features: %v\n\n", sel.Count, sel.Features)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/simulate"
	"repro/internal/smart"
)

func TestRunSynthetic(t *testing.T) {
	// Small synthetic fleet end to end through the CLI path.
	if err := run("MB2", 400, 1, 6, "", "", 20, true, "", "exact", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadModel(t *testing.T) {
	if err := run("NOPE", 400, 1, 1, "", "", 20, true, "", "exact", ""); err == nil {
		t.Error("bad model should fail")
	}
}

func TestRunWithFaults(t *testing.T) {
	// The faulted CLI path must complete in robust mode.
	if err := run("MB2", 400, 1, 6, "", "", 20, true, "seed=3,gaps=0.02,nan=0.01", "exact", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	if err := run("MB2", 400, 1, 6, "", "", 20, true, "gaps=2", "exact", ""); err == nil {
		t.Error("out-of-range fault rate should fail")
	}
}

func TestRunCustomRankers(t *testing.T) {
	// A registry-resolved ensemble (including the new entrants) must
	// run end to end through the CLI path.
	if err := run("MB2", 400, 1, 6, "", "", 20, true, "", "exact", "pearson, mutual-info,svm"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownRanker(t *testing.T) {
	// Unknown ranker names fail fast — before any dataset work — with
	// the registered names in the error.
	err := run("MB2", 400, 1, 6, "", "", 20, true, "", "exact", "pearson,bogus")
	if err == nil {
		t.Fatal("unknown ranker should fail")
	}
	for _, want := range []string{"bogus", "svm-margin"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestLoadCSV(t *testing.T) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 300, Days: 120, Seed: 2, AFRScale: 6})
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.FleetSource{Fleet: fleet}
	dir := t.TempDir()
	logPath := filepath.Join(dir, "smart.csv")
	ticketPath := filepath.Join(dir, "tickets.csv")

	lf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteModelCSV(lf, src, smart.MC1); err != nil {
		t.Fatal(err)
	}
	lf.Close()
	tf, err := os.Create(ticketPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteTicketsCSV(tf, src, []smart.ModelID{smart.MC1}); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	logs, err := loadCSV(logPath, ticketPath)
	if err != nil {
		t.Fatal(err)
	}
	if logs.Model() != smart.MC1 {
		t.Errorf("model = %v", logs.Model())
	}
	// The CLI path over CSV input.
	if err := run("MC1", 0, 2, 0, logPath, ticketPath, 20, true, "", "hist", ""); err != nil {
		t.Fatal(err)
	}
	// Model mismatch is rejected.
	if err := run("MA1", 0, 2, 0, logPath, ticketPath, 20, true, "", "exact", ""); err == nil {
		t.Error("model mismatch should fail")
	}
}

func TestLoadCSVMissingFiles(t *testing.T) {
	if _, err := loadCSV("/nonexistent/x.csv", ""); err == nil {
		t.Error("missing log file should fail")
	}
}

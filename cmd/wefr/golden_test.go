package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything fn printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", runErr, out)
	}
	return out
}

// TestGoldenOutput pins the clean-path CLI output byte for byte: the
// staged-engine refactor (and any later internal change) must keep
// wefr's stdout identical to the pre-refactor pipeline on the same
// fleet and flags.
func TestGoldenOutput(t *testing.T) {
	got := captureStdout(t, func() error {
		return run("MC1", 500, 3, 6, "", "", 20, false, "", "exact", "")
	})
	goldenPath := filepath.Join("testdata", "golden_mc1.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s (%d vs %d bytes).\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, len(got), len(want), got, string(want))
	}
}

package main

import (
	"strings"
	"testing"
)

// baseOptions is a syntactically valid option set; the failure-path
// audit mutates one field at a time.
func baseOptions() options {
	return options{
		Model: "MC2", Selector: "wefr",
		Drives: 100, Days: 120, Seed: 1, AFRScale: 3,
		Trees: 3, Depth: 4, SplitMethod: "exact",
		Dir: "somewhere", Start: 100, End: 110,
		Canary: 5, Window: 30,
	}
}

// TestRunRejectsBadOptions audits the CLI's failure paths: every
// malformed invocation must surface an error (main turns it into a
// nonzero exit on stderr) instead of panicking or silently proceeding.
func TestRunRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantSub string
	}{
		{"unknown model", func(o *options) { o.Model = "MX9" }, "MX9"},
		{"missing dir", func(o *options) { o.Dir = "" }, "-dir"},
		{"unknown selector", func(o *options) { o.Selector = "magic" }, "magic"},
		{"unknown split method", func(o *options) { o.SplitMethod = "guess" }, "guess"},
		{"end beyond horizon", func(o *options) { o.End = 500 }, "horizon"},
		{"start without training days", func(o *options) { o.Start = 0 }, "bootstrap"},
		{"window not above canary", func(o *options) { o.Window = 5; o.Canary = 5 }, "canary"},
	}
	for _, tc := range cases {
		o := baseOptions()
		// Failure paths must trip before any state directory is
		// created; Dir points at nothing runnable.
		o.Dir = t.TempDir() + "/state"
		tc.mutate(&o)
		err := run(o)
		if err == nil {
			t.Errorf("%s: run succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestSelectorByName(t *testing.T) {
	for _, name := range []string{"wefr", "wefr-noupdate", "none"} {
		if _, err := selectorByName(name); err != nil {
			t.Errorf("selector %q: %v", name, err)
		}
	}
	if _, err := selectorByName("WEFR"); err == nil {
		t.Error("selector lookup is unexpectedly case-insensitive")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
)

// The crash harness re-execs this test binary as a controller helper
// process: TestMain notices WEFR_CRASH_HELPER and runs the CLI's run()
// with options passed as JSON, so a crash point armed via
// WEFR_CRASHPOINT kills a real separate process mid-decision — the
// closest in-tree approximation of pulling the plug on a long-running
// controller.

func TestMain(m *testing.M) {
	if os.Getenv("WEFR_CRASH_HELPER") == "1" {
		var o options
		if err := json.Unmarshal([]byte(os.Getenv("WEFR_CRASH_OPTS")), &o); err != nil {
			fmt.Fprintf(os.Stderr, "crash helper: bad options: %v\n", err)
			os.Exit(2)
		}
		if err := run(o); err != nil {
			fmt.Fprintf(os.Stderr, "controller: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// scenarioOptions is the MC2 firmware-bug acceptance scenario: an
// MC2-only fleet whose firmware-failure episode spans days 30..299.
// The bootstrap snapshot trains through day 254 (inside the episode);
// the drift window [255, 314] straddles the episode's end at day 300,
// so the detector fires exactly once — at day 314, the first day the
// minimum window fills — and the post-cycle summary reset leaves too
// few remaining days for a second firing.
func scenarioOptions(dir string) options {
	return options{
		Model: "MC2", Selector: "wefr", Only: true,
		Drives: 450, Days: 330, Seed: 1, AFRScale: 6,
		Trees: 5, Depth: 6, SplitMethod: "exact",
		Dir: dir, Start: 255, End: 320,
		Canary: 21, Window: 60,
	}
}

// helperEnv builds a subprocess environment with every harness
// variable scrubbed, so only the explicitly passed ones apply.
func helperEnv(o options, extra ...string) []string {
	data, err := json.Marshal(o)
	if err != nil {
		panic(err)
	}
	var env []string
	for _, kv := range os.Environ() {
		name, _, _ := strings.Cut(kv, "=")
		switch name {
		case faults.CrashEnv, faults.DegradeEnv, "WEFR_CRASH_HELPER", "WEFR_CRASH_OPTS":
		default:
			env = append(env, kv)
		}
	}
	env = append(env, "WEFR_CRASH_HELPER=1", "WEFR_CRASH_OPTS="+string(data))
	return append(env, extra...)
}

// runHelper executes one controller subprocess and returns its stdout
// and exit code.
func runHelper(t *testing.T, o options, extra ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = helperEnv(o, extra...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("helper process: %v", err)
		}
		code = ee.ExitCode()
	}
	t.Logf("helper exit %d; stderr:\n%s", code, stderr.String())
	return stdout.String(), code
}

// registryFiles maps every artifact file under the state directory's
// registry to its contents.
func registryFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	root := filepath.Join(dir, "registry")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("walk registry: %v", err)
	}
	return out
}

// cleanRun runs the scenario once, uninterrupted, and caches its
// stdout and registry contents as the baseline every crash/resume
// combination must reproduce byte-for-byte.
var cleanRun struct {
	once     sync.Once
	stdout   string
	registry map[string]string
}

func cleanBaseline(t *testing.T) (string, map[string]string) {
	t.Helper()
	cleanRun.once.Do(func() {
		dir, err := os.MkdirTemp("", "ctl-clean-*")
		if err != nil {
			t.Fatalf("baseline dir: %v", err)
		}
		// The baseline must outlive the first test that builds it;
		// clean it when the process exits, not per-test.
		stdout, code := runHelper(t, scenarioOptions(dir))
		if code != 0 {
			os.RemoveAll(dir)
			t.Fatalf("clean scenario run exited %d", code)
		}
		cleanRun.stdout = stdout
		cleanRun.registry = registryFiles(t, dir)
		os.RemoveAll(dir)
	})
	if cleanRun.stdout == "" {
		t.Fatal("clean baseline unavailable (earlier failure)")
	}
	return cleanRun.stdout, cleanRun.registry
}

// TestControllerSites pins the fault-site registry of the controller
// binary: the engine's stage sites plus the controller's four decision
// boundaries, and the candidate degrade point.
func TestControllerSites(t *testing.T) {
	wantCrash := []string{
		"calibrate", "ctrl-canary-eval", "ctrl-candidate-train",
		"ctrl-drift-eval", "ctrl-promote", "ingest", "snapshot-save", "train",
	}
	if got := faults.CrashSites(); !reflect.DeepEqual(got, wantCrash) {
		t.Errorf("crash sites = %v, want %v", got, wantCrash)
	}
	wantDegrade := []string{"ctrl-candidate"}
	if got := faults.DegradeSites(); !reflect.DeepEqual(got, wantDegrade) {
		t.Errorf("degrade sites = %v, want %v", got, wantDegrade)
	}
}

// TestFirmwareEpisodePromotion is the acceptance scenario's happy
// path: the controller detects the firmware episode's regime change,
// refreshes exactly once, and promotes a candidate that beats the
// stale serving snapshot on the canary window.
func TestFirmwareEpisodePromotion(t *testing.T) {
	stdout, _ := cleanBaseline(t)
	for _, want := range []string{
		"serving v1 (bootstrap, trained through day 254)",
		"drift fired",
		"candidate v2",
		"canary verdict: promote",
		"promoted v2 to serving",
		"final: serving v2, 1 refresh(es): 1 promoted, 0 rolled back, 0 kept",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	_, registry := cleanBaseline(t)
	for _, want := range []string{
		filepath.Join("serving", "v0001.json"),
		filepath.Join("serving", "v0002.json"),
	} {
		if _, ok := registry[want]; !ok {
			t.Errorf("registry missing %s (have %d files)", want, len(registry))
		}
	}
}

// TestDegradedCandidateRollback injects a degenerate candidate (alarm
// thresholds zeroed via the ctrl-candidate degrade point): it must
// lose the canary, and the controller must roll back to the prior
// registry version — which the never-overwrite registry still holds.
func TestDegradedCandidateRollback(t *testing.T) {
	dir := t.TempDir()
	stdout, code := runHelper(t, scenarioOptions(dir), faults.DegradeEnv+"=ctrl-candidate")
	if code != 0 {
		t.Fatalf("degraded run exited %d", code)
	}
	for _, want := range []string{
		"canary verdict: rollback",
		"rolled back to v1 (candidate v2 stays in registry)",
		"final: serving v1, 1 refresh(es): 0 promoted, 1 rolled back, 0 kept",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	registry := registryFiles(t, dir)
	for _, want := range []string{
		filepath.Join("serving", "v0001.json"),
		filepath.Join("serving", "v0002.json"),
	} {
		if _, ok := registry[want]; !ok {
			t.Errorf("registry missing %s after rollback", want)
		}
	}
}

// TestControllerCrashResume is the process-level crash matrix: the
// scenario is killed at every registered control crash site (plus the
// engine stage sites its bootstrap and candidate training pass
// through), resumed, and required to produce stdout and registry
// artifacts byte-identical to the uninterrupted run.
func TestControllerCrashResume(t *testing.T) {
	wantStdout, wantRegistry := cleanBaseline(t)
	sites := []struct {
		site string
		hit  int
	}{
		{"ingest", 1},               // bootstrap PreparePhase
		{"ingest", 2},               // candidate PreparePhase
		{"train", 1},                // bootstrap model fit
		{"train", 2},                // candidate model fit
		{"calibrate", 1},            // bootstrap threshold calibration
		{"ctrl-drift-eval", 1},      // after the (journaled) drift firing
		{"ctrl-candidate-train", 1}, // after candidate save, before its record
		{"ctrl-canary-eval", 1},     // after the verdict record
		{"ctrl-promote", 1},         // after the promotion record
	}
	for _, tc := range sites {
		name := fmt.Sprintf("%s-hit%d", tc.site, tc.hit)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			o := scenarioOptions(dir)
			_, code := runHelper(t, o, fmt.Sprintf("%s=%s:%d", faults.CrashEnv, tc.site, tc.hit))
			if code != faults.CrashExitCode {
				t.Fatalf("crashed run exited %d, want %d (site not reached?)", code, faults.CrashExitCode)
			}
			o.Resume = true
			stdout, code := runHelper(t, o)
			if code != 0 {
				t.Fatalf("resumed run exited %d", code)
			}
			if stdout != wantStdout {
				t.Errorf("resumed stdout differs from clean run:\n--- resumed\n%s--- clean\n%s", stdout, wantStdout)
			}
			if got := registryFiles(t, dir); !reflect.DeepEqual(got, wantRegistry) {
				t.Errorf("resumed registry differs from clean run: %d files vs %d", len(got), len(wantRegistry))
			}
		})
	}
}

// TestDegradedCrashResume kills the degraded-candidate run right after
// the rollback record and resumes with the degrade point still armed:
// the rollback decision must survive the crash bit-identically.
func TestDegradedCrashResume(t *testing.T) {
	degrade := faults.DegradeEnv + "=ctrl-candidate"

	wantDir := t.TempDir()
	wantStdout, code := runHelper(t, scenarioOptions(wantDir), degrade)
	if code != 0 {
		t.Fatalf("degraded clean run exited %d", code)
	}
	wantRegistry := registryFiles(t, wantDir)

	dir := t.TempDir()
	o := scenarioOptions(dir)
	_, code = runHelper(t, o, degrade, faults.CrashEnv+"=ctrl-promote:1")
	if code != faults.CrashExitCode {
		t.Fatalf("crashed degraded run exited %d, want %d", code, faults.CrashExitCode)
	}
	o.Resume = true
	stdout, code := runHelper(t, o, degrade)
	if code != 0 {
		t.Fatalf("resumed degraded run exited %d", code)
	}
	if stdout != wantStdout {
		t.Errorf("resumed degraded stdout differs:\n--- resumed\n%s--- clean\n%s", stdout, wantStdout)
	}
	if got := registryFiles(t, dir); !reflect.DeepEqual(got, wantRegistry) {
		t.Errorf("resumed degraded registry differs: %d files vs %d", len(got), len(wantRegistry))
	}
}

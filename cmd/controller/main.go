// Command controller runs the continuous-operation control loop over
// a simulated fleet: it trains an initial serving snapshot, ingests
// each control day into the fleet store, watches the serving model's
// score stream for drift (Bayesian change-point + PSI divergence), and
// on a firing re-runs feature selection, trains a candidate snapshot,
// canaries it against the serving one on a held-out recent window, and
// promotes or rolls back through the registry's never-overwrite
// versioning.
//
// Usage:
//
//	controller -model MC2 -dir runs/mc2 -start 230 -end 360
//	controller -model MC2 -dir runs/mc2 -start 230 -end 360 -resume
//
// Every control decision is journaled before it takes effect, so a
// controller killed at any point resumes (-resume) to byte-identical
// decisions, artifacts, and report.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/control"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/pipeline"
	"repro/internal/simulate"
	"repro/internal/smart"
)

// options are the CLI parameters of one controller run.
type options struct {
	Model       string
	Selector    string
	Drives      int
	Days        int
	Only        bool
	Seed        int64
	AFRScale    float64
	Trees       int
	Depth       int
	UseGBDT     bool
	SplitMethod string
	Workers     int

	Dir    string
	Start  int
	End    int
	Canary int
	Window int
	PSI    float64
	Z      float64
	Resume bool
}

func main() {
	var o options
	flag.StringVar(&o.Model, "model", "MC2", "drive model under control")
	flag.StringVar(&o.Selector, "selector", "wefr", "refresh selector: wefr | wefr-noupdate | none")
	flag.IntVar(&o.Drives, "drives", 4000, "synthetic fleet size")
	flag.IntVar(&o.Days, "days", 0, "simulated span in days (0 = simulator default)")
	flag.BoolVar(&o.Only, "only", false, "restrict the simulated fleet to the controlled model")
	flag.Int64Var(&o.Seed, "seed", 1, "seed")
	flag.Float64Var(&o.AFRScale, "afr-scale", 3, "failure densifier")
	flag.IntVar(&o.Trees, "trees", 100, "prediction forest size")
	flag.IntVar(&o.Depth, "depth", 13, "prediction forest depth")
	flag.BoolVar(&o.UseGBDT, "gbdt", false, "use the gradient-boosted predictor instead of Random Forest")
	flag.StringVar(&o.SplitMethod, "split-method", "exact", "tree split search: exact (presorted, bit-stable) or hist (histogram-binned, faster)")
	flag.IntVar(&o.Workers, "workers", 0, "parallelism (0 = all cores); results are identical for any value")
	flag.StringVar(&o.Dir, "dir", "", "controller state directory: journal + snapshot registry (required)")
	flag.IntVar(&o.Start, "start", 230, "first controlled day; bootstrap trains on days [0, start-1]")
	flag.IntVar(&o.End, "end", 0, "last controlled day (0 = last simulated day)")
	flag.IntVar(&o.Canary, "canary", control.DefaultCanaryDays, "held-out canary window in days")
	flag.IntVar(&o.Window, "window", control.DefaultMinWindow, "minimum summary window before drift is evaluated")
	flag.Float64Var(&o.PSI, "psi", control.DefaultPSIThreshold, "PSI divergence threshold")
	flag.Float64Var(&o.Z, "z", 0, "change-point z threshold (0 = default)")
	flag.BoolVar(&o.Resume, "resume", false, "resume an interrupted controller journal")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "controller: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	model, err := smart.ParseModel(o.Model)
	if err != nil {
		return err
	}
	if o.Dir == "" {
		return fmt.Errorf("-dir is required")
	}
	sel, err := selectorByName(o.Selector)
	if err != nil {
		return err
	}
	scfg := simulate.Config{TotalDrives: o.Drives, Days: o.Days, Seed: o.Seed, AFRScale: o.AFRScale}
	if o.Only {
		scfg.Models = []smart.ModelID{model}
	}
	fleet, err := simulate.New(scfg)
	if err != nil {
		return err
	}
	src := dataset.FleetSource{Fleet: fleet}
	end := o.End
	if end == 0 {
		end = src.Days() - 1
	}
	sm, err := hist.ParseSplitMethod(o.SplitMethod)
	if err != nil {
		return err
	}
	ecfg := pipeline.Config{
		Forest:      forest.Config{NumTrees: o.Trees, MaxDepth: o.Depth, Seed: o.Seed},
		SplitMethod: sm,
		Workers:     o.Workers,
		Seed:        o.Seed,
	}
	if o.UseGBDT {
		ecfg.Predictor = pipeline.PredictorGBDT
		ecfg.GBDT = gbdt.Config{NumRounds: o.Trees, MaxDepth: min(o.Depth, 6), Eta: 0.3, Lambda: 1}
	}
	res, err := control.Run(src, control.Config{
		Model:        model,
		Selector:     sel,
		Engine:       ecfg,
		Start:        o.Start,
		End:          end,
		CanaryDays:   o.Canary,
		MinWindow:    o.Window,
		PSIThreshold: o.PSI,
		ZThreshold:   o.Z,
		Dir:          o.Dir,
		Resume:       o.Resume,
		// Progress goes to stderr so stdout stays byte-identical
		// across crash/resume runs.
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "controller: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	return nil
}

func selectorByName(name string) (pipeline.Selector, error) {
	switch name {
	case "wefr":
		return pipeline.WEFR{}, nil
	case "wefr-noupdate":
		return pipeline.WEFR{NoUpdate: true}, nil
	case "none":
		return pipeline.NoSelection{}, nil
	default:
		return nil, fmt.Errorf("unknown selector %q (want wefr, wefr-noupdate, or none)", name)
	}
}

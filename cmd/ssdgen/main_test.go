package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/smart"
)

func TestParseModels(t *testing.T) {
	got, err := parseModels("MC1,MA2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != smart.MC1 || got[1] != smart.MA2 {
		t.Errorf("parseModels = %v", got)
	}
	if got, err := parseModels(""); err != nil || got != nil {
		t.Errorf("empty list = (%v, %v)", got, err)
	}
	if _, err := parseModels("MC1,BOGUS"); err == nil {
		t.Error("bogus model should fail")
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(300, 120, 1, 2, dir, "MB2"); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "smart_MB2.csv")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty SMART log file")
	}
	if _, err := os.Stat(filepath.Join(dir, "tickets.csv")); err != nil {
		t.Fatal(err)
	}
	// No other model files written for a restricted fleet.
	if _, err := os.Stat(filepath.Join(dir, "smart_MC1.csv")); !os.IsNotExist(err) {
		t.Error("unexpected MC1 file")
	}
}

// TestWriteFileNeverLeavesPartialOutput verifies the failure path of
// the CSV export: a writer that dies mid-stream must leave neither the
// target file nor a stale temp file behind.
func TestWriteFileNeverLeavesPartialOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "smart_X.csv")
	err := writeFile(path, func(f *os.File) error {
		f.WriteString("partial,row\n")
		return os.ErrInvalid // simulated mid-export failure
	})
	if err == nil {
		t.Fatal("failed writer reported success")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("partial output exists after failed export: %v", statErr)
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Errorf("%d files left in output dir after failed export", len(entries))
	}
	// A successful retry into the same path works and is complete.
	if err := writeFile(path, func(f *os.File) error {
		_, werr := f.WriteString("ok\n")
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != "ok\n" {
		t.Errorf("retry output = %q, %v", data, err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(-1, 120, 1, 1, t.TempDir(), ""); err == nil {
		t.Error("negative drives should fail")
	}
	if err := run(100, 120, 1, 1, t.TempDir(), "XX"); err == nil {
		t.Error("bad model list should fail")
	}
}

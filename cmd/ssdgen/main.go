// Command ssdgen generates a synthetic SSD fleet and writes its daily
// SMART logs and failure tickets as CSV files in the layout of the
// released Alibaba ssd_smart_logs dataset (one log file per drive
// model, one shared tickets file).
//
// Usage:
//
//	ssdgen -drives 4000 -days 730 -seed 1 -out ./data
//
// produces ./data/smart_<MODEL>.csv for each model plus
// ./data/tickets.csv.
//
// With -spill, the fleet is instead streamed into the binary columnar
// spill format of internal/store (one <MODEL>.spill file per model,
// written with O(workers) resident memory), which a store opened with
// Options.SpillDir maps back zero-copy — the path to million-drive
// fleets that never fit in RAM as CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/store"
)

func main() {
	var (
		drives   = flag.Int("drives", 4000, "total fleet size across all six models")
		days     = flag.Int("days", simulate.DefaultDays, "dataset span in days")
		seed     = flag.Int64("seed", 1, "simulation seed")
		afrScale = flag.Float64("afr-scale", 1, "multiplier on each model's target AFR")
		out      = flag.String("out", ".", "output directory")
		models   = flag.String("models", "", "comma-separated model subset (e.g. MC1,MC2); empty = all")
		spill    = flag.Bool("spill", false, "write binary columnar spill files (store.Options.SpillDir layout) instead of CSVs, streaming with O(workers) memory")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "spill-mode generation parallelism")
	)
	flag.Parse()

	if *spill {
		if err := runSpill(*drives, *days, *seed, *afrScale, *out, *models, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "ssdgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*drives, *days, *seed, *afrScale, *out, *models); err != nil {
		fmt.Fprintf(os.Stderr, "ssdgen: %v\n", err)
		os.Exit(1)
	}
}

func run(drives, days int, seed int64, afrScale float64, out, modelList string) error {
	modelIDs, err := parseModels(modelList)
	if err != nil {
		return err
	}
	fleet, err := simulate.New(simulate.Config{
		TotalDrives: drives,
		Days:        days,
		Seed:        seed,
		AFRScale:    afrScale,
		Models:      modelIDs,
	})
	if err != nil {
		return err
	}
	src := dataset.FleetSource{Fleet: fleet}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, m := range fleet.Models() {
		path := filepath.Join(out, fmt.Sprintf("smart_%s.csv", m))
		if err := writeFile(path, func(f *os.File) error {
			return dataset.WriteModelCSV(f, src, m)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d drives, %d failures)\n", path, len(fleet.DrivesOf(m)), len(fleet.Failures(m)))
	}
	ticketPath := filepath.Join(out, "tickets.csv")
	if err := writeFile(ticketPath, func(f *os.File) error {
		return dataset.WriteTicketsCSV(f, src, fleet.Models())
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", ticketPath)
	return nil
}

// runSpill streams each model's fleet straight into the store's
// columnar spill format. Series are generated per drive on demand and
// written with positioned writes, so memory stays O(workers) no matter
// the fleet size.
func runSpill(drives, days int, seed int64, afrScale float64, out, modelList string, workers int) error {
	modelIDs, err := parseModels(modelList)
	if err != nil {
		return err
	}
	fleet, err := simulate.New(simulate.Config{
		TotalDrives: drives,
		Days:        days,
		Seed:        seed,
		AFRScale:    afrScale,
		Models:      modelIDs,
	})
	if err != nil {
		return err
	}
	src := dataset.FleetSource{Fleet: fleet}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, m := range fleet.Models() {
		path, err := store.WriteSpill(out, src, m, workers)
		if err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d drives, %d failures, %.1f MiB)\n",
			path, len(fleet.DrivesOf(m)), len(fleet.Failures(m)), float64(fi.Size())/(1<<20))
	}
	return nil
}

func parseModels(list string) ([]smart.ModelID, error) {
	if list == "" {
		return nil, nil
	}
	var out []smart.ModelID
	start := 0
	for i := 0; i <= len(list); i++ {
		if i == len(list) || list[i] == ',' {
			m, err := smart.ParseModel(list[start:i])
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			start = i + 1
		}
	}
	return out, nil
}

// writeFile streams the payload into a temp file and renames it into
// place, so a failed export never leaves a partial CSV behind.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("close %s: %w", path, err)
	}
	// CreateTemp makes 0600 files; match os.Create's permissions.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("publish %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("publish %s: %w", path, err)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

// The crash harness re-execs this test binary as a predict helper
// process: TestMain notices WEFR_CRASH_HELPER and runs the CLI's run()
// with options passed as JSON, so a crash point armed via
// WEFR_CRASHPOINT kills a real separate process mid-pipeline — the
// closest in-tree approximation of pulling the plug.

func TestMain(m *testing.M) {
	if os.Getenv("WEFR_CRASH_HELPER") == "1" {
		var o options
		if err := json.Unmarshal([]byte(os.Getenv("WEFR_CRASH_OPTS")), &o); err != nil {
			fmt.Fprintf(os.Stderr, "crash helper: bad options: %v\n", err)
			os.Exit(2)
		}
		if err := run(o); err != nil {
			fmt.Fprintf(os.Stderr, "predict: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashBaseOptions is the shared run shape of the crash matrix: small
// enough to run the whole matrix in CI, large enough for every phase
// to have training signal.
func crashBaseOptions() options {
	return options{
		Model: "MC1", Selector: "none", Percent: 0.3,
		Drives: 400, Seed: 3, AFRScale: 5,
		Trees: 5, Depth: 5, SplitMethod: "exact",
		SnapshotDir: "unused",
	}
}

// helperEnv builds a subprocess environment with every harness
// variable scrubbed, so only the explicitly passed ones apply.
func helperEnv(o options, extra ...string) []string {
	data, err := json.Marshal(o)
	if err != nil {
		panic(err)
	}
	var env []string
	for _, kv := range os.Environ() {
		name, _, _ := strings.Cut(kv, "=")
		switch name {
		case faults.CrashEnv, "WEFR_CRASH_HELPER", "WEFR_CRASH_OPTS":
		default:
			env = append(env, kv)
		}
	}
	env = append(env, "WEFR_CRASH_HELPER=1", "WEFR_CRASH_OPTS="+string(data))
	return append(env, extra...)
}

// runHelper executes one predict subprocess and returns its stdout and
// exit code.
func runHelper(t *testing.T, o options, extra ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = helperEnv(o, extra...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("helper process: %v", err)
		}
		code = ee.ExitCode()
	}
	t.Logf("helper exit %d; stderr:\n%s", code, stderr.String())
	return stdout.String(), code
}

// artifactFiles maps every registry file under the journal dir to its
// contents.
func artifactFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	root := filepath.Join(dir, "artifacts")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("walk artifacts: %v", err)
	}
	return out
}

// TestCrashResume is the process-level crash matrix: for every
// registered crash point (and more than one hit where the pipeline
// passes the site repeatedly), a journaled predict subprocess is
// killed at that point, then resumed without the crash armed. The
// resumed run's stdout must be byte-identical to a clean, unjournaled
// run — and the artifacts it leaves behind byte-identical to an
// uninterrupted journaled run's — at differing worker counts.
func TestCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix is not short")
	}
	sites := faults.CrashSites()
	want := []string{"calibrate", "ingest", "snapshot-save", "train"}
	if fmt.Sprint(sites) != fmt.Sprint(want) {
		t.Fatalf("registered crash sites = %v, want %v", sites, want)
	}

	// The goldens: a clean unjournaled run (stdout) and an
	// uninterrupted journaled run (artifacts).
	clean := crashBaseOptions()
	clean.Workers = 1
	cleanOut, code := runHelper(t, clean)
	if code != 0 {
		t.Fatalf("clean run exited %d", code)
	}
	refDir := t.TempDir()
	ref := crashBaseOptions()
	ref.Workers = 2
	ref.Journal = refDir
	refOut, code := runHelper(t, ref)
	if code != 0 {
		t.Fatalf("journaled reference run exited %d", code)
	}
	if refOut != cleanOut {
		t.Fatalf("journaled stdout differs from clean run:\n--- clean ---\n%s\n--- journaled ---\n%s", cleanOut, refOut)
	}
	refArtifacts := artifactFiles(t, refDir)
	if len(refArtifacts) == 0 {
		t.Fatal("reference journaled run saved no artifacts")
	}

	for _, site := range sites {
		for _, hit := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s_hit%d", site, hit), func(t *testing.T) {
				dir := t.TempDir()
				crash := crashBaseOptions()
				crash.Workers = 2
				crash.Journal = dir
				_, code := runHelper(t, crash, fmt.Sprintf("%s=%s:%d", faults.CrashEnv, site, hit))
				if code != faults.CrashExitCode {
					t.Fatalf("crash run exited %d, want %d (site not reached?)", code, faults.CrashExitCode)
				}

				resume := crashBaseOptions()
				resume.Workers = 3
				resume.Journal = dir
				resume.Resume = true
				out, code := runHelper(t, resume)
				if code != 0 {
					t.Fatalf("resume exited %d", code)
				}
				if out != cleanOut {
					t.Errorf("resumed stdout differs from clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", cleanOut, out)
				}
				got := artifactFiles(t, dir)
				if len(got) != len(refArtifacts) {
					t.Errorf("artifact set: %d files, reference has %d", len(got), len(refArtifacts))
				}
				for rel, data := range refArtifacts {
					if got[rel] != data {
						t.Errorf("artifact %s differs from uninterrupted run (or is missing)", rel)
					}
				}
			})
		}
	}
}

// TestJournalFlagValidation pins the CLI-level journal errors: -resume
// without -journal, and rerunning an existing journal without -resume.
func TestJournalFlagValidation(t *testing.T) {
	o := crashBaseOptions()
	o.Resume = true
	if err := run(o); err == nil || !strings.Contains(err.Error(), "-journal") {
		t.Errorf("resume without journal: %v", err)
	}
}

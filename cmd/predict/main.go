// Command predict runs the full offline failure-prediction pipeline
// for one drive model over the paper's three testing phases: feature
// selection (WEFR by default), statistical feature generation, Random
// Forest training, validation-calibrated alarm thresholds, and
// drive-level first-alarm evaluation.
//
// Usage:
//
//	predict -model MC1 -selector wefr
//	predict -model MB1 -selector spearman -percent 0.3
//	predict -model MA1 -selector none
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/pipeline"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/textplot"
)

func main() {
	var (
		model    = flag.String("model", "MC1", "drive model")
		selName  = flag.String("selector", "wefr", "wefr | wefr-noupdate | none | pearson | spearman | jindex | rf | xgb")
		percent  = flag.Float64("percent", 0.3, "kept fraction for single-approach selectors")
		drives   = flag.Int("drives", 4000, "synthetic fleet size")
		seed     = flag.Int64("seed", 1, "seed")
		afrScale = flag.Float64("afr-scale", 3, "failure densifier")
		trees    = flag.Int("trees", 100, "prediction forest size")
		depth    = flag.Int("depth", 13, "prediction forest depth")
		useGBDT  = flag.Bool("gbdt", false, "use the gradient-boosted predictor instead of Random Forest")
		splitStr = flag.String("split-method", "exact", "tree split search: exact (presorted, bit-stable) or hist (histogram-binned, faster)")
	)
	flag.Parse()

	if err := run(*model, *selName, *percent, *drives, *seed, *afrScale, *trees, *depth, *useGBDT, *splitStr); err != nil {
		fmt.Fprintf(os.Stderr, "predict: %v\n", err)
		os.Exit(1)
	}
}

func run(modelName, selName string, percent float64, drives int, seed int64, afrScale float64, trees, depth int, useGBDT bool, splitMethod string) error {
	model, err := smart.ParseModel(modelName)
	if err != nil {
		return err
	}
	sm, err := hist.ParseSplitMethod(splitMethod)
	if err != nil {
		return err
	}
	sel, err := selectorByName(selName, percent, seed)
	if err != nil {
		return err
	}

	fleet, err := simulate.New(simulate.Config{TotalDrives: drives, Seed: seed, AFRScale: afrScale})
	if err != nil {
		return err
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})

	cfg := pipeline.Config{
		Forest:      forest.Config{NumTrees: trees, MaxDepth: depth, Seed: seed},
		SplitMethod: sm,
		Seed:        seed,
	}
	if useGBDT {
		cfg.Predictor = pipeline.PredictorGBDT
		cfg.GBDT = gbdt.Config{NumRounds: trees, MaxDepth: min(depth, 6), Eta: 0.3, Lambda: 1}
	}
	phases := pipeline.StandardPhases(src.Days())
	fmt.Printf("model %v, selector %s, %d drives, %d phases\n\n", model, sel.Name(), drives, len(phases))

	results, total, err := pipeline.Run(src, model, sel, phases, cfg)
	if err != nil {
		return err
	}

	var rows [][]string
	for i, r := range results {
		auc := "n/a"
		if v, err := pipeline.AUC(r.Outcomes); err == nil {
			auc = fmt.Sprintf("%.3f", v)
		}
		rows = append(rows, []string{
			fmt.Sprintf("phase %d", i+1),
			fmt.Sprintf("%d", len(r.Selection.All)),
			fmt.Sprintf("%.2f", r.Thresholds[0]),
			fmt.Sprintf("%d", r.Confusion.TP),
			fmt.Sprintf("%d", r.Confusion.FP),
			fmt.Sprintf("%d", r.Confusion.FN),
			textplot.Percent(r.Confusion.Precision()),
			textplot.Percent(r.Confusion.Recall()),
			textplot.Percent(r.Confusion.F05()),
			auc,
		})
	}
	fmt.Print(textplot.Table(
		[]string{"Phase", "Feats", "Thresh", "TP", "FP", "FN", "P", "R", "F0.5", "AUC"}, rows))
	fmt.Printf("\nOverall: %s\n", total)

	last := results[len(results)-1]
	fmt.Printf("\nSelected features (last phase): %v\n", last.Selection.All)
	if last.Selection.Split != nil {
		fmt.Printf("Wear split at MWI_N %.0f\n  low:  %v\n  high: %v\n",
			last.Selection.Split.ThresholdMWI, last.Selection.Split.Low, last.Selection.Split.High)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func selectorByName(name string, percent float64, seed int64) (pipeline.Selector, error) {
	switch strings.ToLower(name) {
	case "wefr":
		return pipeline.WEFR{}, nil
	case "wefr-noupdate":
		return pipeline.WEFR{NoUpdate: true}, nil
	case "none":
		return pipeline.NoSelection{}, nil
	case "pearson":
		return pipeline.SingleRanker{Ranker: selection.Pearson{}, Percent: percent}, nil
	case "spearman":
		return pipeline.SingleRanker{Ranker: selection.Spearman{}, Percent: percent}, nil
	case "jindex":
		return pipeline.SingleRanker{Ranker: selection.JIndex{}, Percent: percent}, nil
	case "rf":
		return pipeline.SingleRanker{Ranker: selection.RandomForest{Seed: seed}, Percent: percent}, nil
	case "xgb":
		return pipeline.SingleRanker{Ranker: selection.XGBoost{}, Percent: percent}, nil
	default:
		return nil, fmt.Errorf("unknown selector %q", name)
	}
}

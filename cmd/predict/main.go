// Command predict runs the full offline failure-prediction pipeline
// for one drive model over the paper's three testing phases: feature
// selection (WEFR by default), statistical feature generation, Random
// Forest training, validation-calibrated alarm thresholds, and
// drive-level first-alarm evaluation.
//
// Usage:
//
//	predict -model MC1 -selector wefr
//	predict -model MB1 -selector spearman -percent 0.3
//	predict -model MA1 -selector none
//
// A trained run can be captured as a versioned model snapshot and
// later re-scored without retraining:
//
//	predict -model MC1 -snapshot save -snapshot-dir artifacts
//	predict -model MC1 -snapshot load -snapshot-dir artifacts
//
// With -journal, each completed phase is checkpointed (fsync'd run
// journal + versioned model artifacts); after a crash, -resume reloads
// the completed phases instead of retraining them, with output
// identical to an uninterrupted run:
//
//	predict -model MC1 -journal runs/mc1
//	predict -model MC1 -journal runs/mc1 -resume
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/gbdt"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/textplot"
)

// options are the CLI parameters of one predict run.
type options struct {
	Model       string
	Selector    string
	Percent     float64
	Drives      int
	Seed        int64
	AFRScale    float64
	Trees       int
	Depth       int
	UseGBDT     bool
	SplitMethod string
	Workers     int
	// Snapshot selects the artifact mode: "" (train and evaluate),
	// "save" (train, evaluate, save the last phase's trained model),
	// or "load" (load a saved model and score the held-out window
	// without retraining).
	Snapshot string
	// SnapshotDir is the registry root directory.
	SnapshotDir string
	// SnapshotName overrides the artifact name; empty means
	// "<model>-<selector>".
	SnapshotName string
	// SnapshotVersion picks the version to load; <= 0 means latest.
	SnapshotVersion int
	// Journal, when set, checkpoints each completed phase into this
	// directory (run journal + per-phase model artifacts) so an
	// interrupted run can be resumed.
	Journal string
	// Resume continues an existing journal: completed phases reload
	// from their artifacts instead of retraining. Output is identical
	// to an uninterrupted run.
	Resume bool
}

func main() {
	var o options
	flag.StringVar(&o.Model, "model", "MC1", "drive model")
	flag.StringVar(&o.Selector, "selector", "wefr", "wefr | wefr-noupdate | none | pearson | spearman | jindex | rf | xgb")
	flag.Float64Var(&o.Percent, "percent", 0.3, "kept fraction for single-approach selectors")
	flag.IntVar(&o.Drives, "drives", 4000, "synthetic fleet size")
	flag.Int64Var(&o.Seed, "seed", 1, "seed")
	flag.Float64Var(&o.AFRScale, "afr-scale", 3, "failure densifier")
	flag.IntVar(&o.Trees, "trees", 100, "prediction forest size")
	flag.IntVar(&o.Depth, "depth", 13, "prediction forest depth")
	flag.BoolVar(&o.UseGBDT, "gbdt", false, "use the gradient-boosted predictor instead of Random Forest")
	flag.StringVar(&o.SplitMethod, "split-method", "exact", "tree split search: exact (presorted, bit-stable) or hist (histogram-binned, faster)")
	flag.IntVar(&o.Workers, "workers", 0, "parallelism (0 = all cores); results are identical for any value")
	flag.StringVar(&o.Snapshot, "snapshot", "", "model-snapshot mode: save | load (empty = train and evaluate only)")
	flag.StringVar(&o.SnapshotDir, "snapshot-dir", "artifacts", "model-snapshot registry directory")
	flag.StringVar(&o.SnapshotName, "snapshot-name", "", "artifact name (default <model>-<selector>)")
	flag.IntVar(&o.SnapshotVersion, "snapshot-version", 0, "version to load (0 = latest)")
	flag.StringVar(&o.Journal, "journal", "", "journal directory for crash-safe runs (empty = no journaling)")
	flag.BoolVar(&o.Resume, "resume", false, "resume an interrupted journaled run (requires -journal)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "predict: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	model, err := smart.ParseModel(o.Model)
	if err != nil {
		return err
	}
	if o.Resume && o.Journal == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	switch o.Snapshot {
	case "", "save":
		return runTrain(o, model)
	case "load":
		return runLoad(o, model)
	default:
		return fmt.Errorf("unknown -snapshot mode %q (want save or load)", o.Snapshot)
	}
}

// snapshotName resolves the registry artifact name.
func (o options) snapshotName() string {
	if o.SnapshotName != "" {
		return o.SnapshotName
	}
	return fmt.Sprintf("%s-%s", o.Model, strings.ToLower(o.Selector))
}

// newSource builds the synthetic fleet source. The engine's fleet
// store takes care of caching, so the raw source is returned directly.
func newSource(o options) (dataset.Source, error) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: o.Drives, Seed: o.Seed, AFRScale: o.AFRScale})
	if err != nil {
		return nil, err
	}
	return dataset.FleetSource{Fleet: fleet}, nil
}

func pipelineConfig(o options) (pipeline.Config, error) {
	sm, err := hist.ParseSplitMethod(o.SplitMethod)
	if err != nil {
		return pipeline.Config{}, err
	}
	cfg := pipeline.Config{
		Forest:      forest.Config{NumTrees: o.Trees, MaxDepth: o.Depth, Seed: o.Seed},
		SplitMethod: sm,
		Workers:     o.Workers,
		Seed:        o.Seed,
	}
	if o.UseGBDT {
		cfg.Predictor = pipeline.PredictorGBDT
		cfg.GBDT = gbdt.Config{NumRounds: o.Trees, MaxDepth: min(o.Depth, 6), Eta: 0.3, Lambda: 1}
	}
	return cfg, nil
}

// runTrain trains and evaluates the three standard phases, optionally
// saving the last phase's trained model as a versioned snapshot.
func runTrain(o options, model smart.ModelID) error {
	sel, err := selectorByName(o.Selector, o.Percent, o.Seed)
	if err != nil {
		return err
	}
	src, err := newSource(o)
	if err != nil {
		return err
	}
	cfg, err := pipelineConfig(o)
	if err != nil {
		return err
	}
	phases := pipeline.StandardPhases(src.Days())
	fmt.Printf("model %v, selector %s, %d drives, %d phases\n\n", model, sel.Name(), o.Drives, len(phases))

	var results []pipeline.PhaseResult
	var total metrics.Confusion
	if o.Journal != "" {
		// Resume notices go to stderr so stdout stays byte-identical to
		// an uninterrupted (or unjournaled) run.
		jo := pipeline.JournalOpts{Dir: o.Journal, Resume: o.Resume, Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "predict: "+format+"\n", args...)
		}}
		results, total, err = pipeline.RunJournaled(src, model, sel, phases, cfg, jo)
	} else {
		results, total, err = pipeline.Run(src, model, sel, phases, cfg)
	}
	if err != nil {
		return err
	}

	var rows [][]string
	for i, r := range results {
		auc := "n/a"
		if v, err := pipeline.AUC(r.Outcomes); err == nil {
			auc = fmt.Sprintf("%.3f", v)
		}
		rows = append(rows, []string{
			fmt.Sprintf("phase %d", i+1),
			fmt.Sprintf("%d", len(r.Selection.All)),
			fmt.Sprintf("%.2f", r.Thresholds[0]),
			fmt.Sprintf("%d", r.Confusion.TP),
			fmt.Sprintf("%d", r.Confusion.FP),
			fmt.Sprintf("%d", r.Confusion.FN),
			textplot.Percent(r.Confusion.Precision()),
			textplot.Percent(r.Confusion.Recall()),
			textplot.Percent(r.Confusion.F05()),
			auc,
		})
	}
	fmt.Print(textplot.Table(
		[]string{"Phase", "Feats", "Thresh", "TP", "FP", "FN", "P", "R", "F0.5", "AUC"}, rows))
	fmt.Printf("\nOverall: %s\n", total)

	last := results[len(results)-1]
	fmt.Printf("\nSelected features (last phase): %v\n", last.Selection.All)
	if last.Selection.Split != nil {
		fmt.Printf("Wear split at MWI_N %.0f\n  low:  %v\n  high: %v\n",
			last.Selection.Split.ThresholdMWI, last.Selection.Split.Low, last.Selection.Split.High)
	}

	if o.Snapshot == "save" {
		snap, err := last.Snapshot()
		if err != nil {
			return err
		}
		reg := &core.Registry{Dir: o.SnapshotDir}
		version, err := pipeline.SaveSnapshot(reg, o.snapshotName(), snap)
		if err != nil {
			return err
		}
		fmt.Printf("\nSaved model snapshot %s v%d (trained through day %d, config %s) to %s\n",
			o.snapshotName(), version, snap.TrainedThrough, snap.ConfigHash, o.SnapshotDir)
	}
	return nil
}

// runLoad scores the held-out window with a saved model snapshot — no
// selection, training, or calibration happens.
func runLoad(o options, model smart.ModelID) error {
	reg := &core.Registry{Dir: o.SnapshotDir}
	snap, err := pipeline.LoadSnapshot(reg, o.snapshotName(), o.SnapshotVersion)
	if err != nil {
		return err
	}
	if snap.Model != model {
		return fmt.Errorf("snapshot %s is for model %v, not %v", o.snapshotName(), snap.Model, model)
	}
	src, err := newSource(o)
	if err != nil {
		return err
	}
	phases := pipeline.StandardPhases(src.Days())
	last := phases[len(phases)-1]
	fmt.Printf("model %v, snapshot %s (selector %s, trained through day %d, config %s)\n",
		model, o.snapshotName(), snap.Selector, snap.TrainedThrough, snap.ConfigHash)
	fmt.Printf("scoring days [%d, %d] without retraining\n\n", last.TestLo, last.TestHi)

	outcomes, err := pipeline.ScoreSnapshot(src, snap, last.TestLo, last.TestHi, pipeline.ScoreOpts{Workers: o.Workers})
	if err != nil {
		return err
	}
	confusion := pipeline.EvaluateOutcomes(outcomes)
	auc := "n/a"
	if v, err := pipeline.AUC(outcomes); err == nil {
		auc = fmt.Sprintf("%.3f", v)
	}
	fmt.Print(textplot.Table(
		[]string{"Window", "Feats", "Thresh", "TP", "FP", "FN", "P", "R", "F0.5", "AUC"},
		[][]string{{
			fmt.Sprintf("[%d, %d]", last.TestLo, last.TestHi),
			fmt.Sprintf("%d", len(snap.Selection.All)),
			fmt.Sprintf("%.2f", snap.Thresholds[0]),
			fmt.Sprintf("%d", confusion.TP),
			fmt.Sprintf("%d", confusion.FP),
			fmt.Sprintf("%d", confusion.FN),
			textplot.Percent(confusion.Precision()),
			textplot.Percent(confusion.Recall()),
			textplot.Percent(confusion.F05()),
			auc,
		}}))
	fmt.Printf("\nOverall: %s\n", confusion)
	return nil
}

func selectorByName(name string, percent float64, seed int64) (pipeline.Selector, error) {
	switch strings.ToLower(name) {
	case "wefr":
		return pipeline.WEFR{}, nil
	case "wefr-noupdate":
		return pipeline.WEFR{NoUpdate: true}, nil
	case "none":
		return pipeline.NoSelection{}, nil
	case "pearson":
		return pipeline.SingleRanker{Ranker: selection.Pearson{}, Percent: percent}, nil
	case "spearman":
		return pipeline.SingleRanker{Ranker: selection.Spearman{}, Percent: percent}, nil
	case "jindex":
		return pipeline.SingleRanker{Ranker: selection.JIndex{}, Percent: percent}, nil
	case "rf":
		return pipeline.SingleRanker{Ranker: selection.RandomForest{Seed: seed}, Percent: percent}, nil
	case "xgb":
		return pipeline.SingleRanker{Ranker: selection.XGBoost{}, Percent: percent}, nil
	default:
		return nil, fmt.Errorf("unknown selector %q", name)
	}
}

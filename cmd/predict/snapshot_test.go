package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything fn printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", runErr, out)
	}
	return out
}

// tableRow finds the table line starting with the given label and
// returns its metric columns (everything after the label cell).
func tableRow(t *testing.T, out, label string) []string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), label) {
			fields := strings.Fields(strings.TrimSpace(line))
			// Drop the label's own words ("phase 3" is two fields,
			// "[600," "629]" is two fields).
			return fields[len(fields)-9:]
		}
	}
	t.Fatalf("no table row %q in output:\n%s", label, out)
	return nil
}

// TestSnapshotSaveLoadCLI runs the CLI end to end: train with
// -snapshot save, then score with -snapshot load, and require the
// loaded model's held-out-window metrics to match the training run's
// last phase exactly (the load path retrains nothing, so every
// column — features, threshold, TP/FP/FN, P/R/F0.5, AUC — must agree).
func TestSnapshotSaveLoadCLI(t *testing.T) {
	dir := t.TempDir()
	base := options{
		Model: "MC1", Selector: "none", Percent: 0.3,
		Drives: 400, Seed: 3, AFRScale: 5,
		Trees: 10, Depth: 6, SplitMethod: "exact",
		SnapshotDir: dir,
	}

	save := base
	save.Snapshot = "save"
	saveOut := captureStdout(t, func() error { return run(save) })
	if !strings.Contains(saveOut, "Saved model snapshot MC1-none v1") {
		t.Fatalf("save output missing confirmation:\n%s", saveOut)
	}
	if _, err := os.Stat(filepath.Join(dir, "MC1-none", "v0001.json")); err != nil {
		t.Fatalf("snapshot artifact not on disk: %v", err)
	}

	load := base
	load.Snapshot = "load"
	loadOut := captureStdout(t, func() error { return run(load) })
	if !strings.Contains(loadOut, "without retraining") {
		t.Fatalf("load output:\n%s", loadOut)
	}

	trained := tableRow(t, saveOut, "phase 3")
	scored := tableRow(t, loadOut, "[")
	for i := range trained {
		if trained[i] != scored[i] {
			t.Errorf("column %d: trained %q != snapshot-scored %q\ntrain row: %v\nload row:  %v",
				i, trained[i], scored[i], trained, scored)
		}
	}

	// A second save bumps the version instead of overwriting.
	saveOut = captureStdout(t, func() error { return run(save) })
	if !strings.Contains(saveOut, "Saved model snapshot MC1-none v2") {
		t.Fatalf("second save output:\n%s", saveOut)
	}
}

func TestRunRejectsBadSnapshotMode(t *testing.T) {
	o := options{Model: "MC1", Snapshot: "bogus"}
	if err := run(o); err == nil || !strings.Contains(err.Error(), "snapshot mode") {
		t.Errorf("error = %v", err)
	}
}

package main

import (
	"testing"

	"repro/internal/pipeline"
)

func TestSelectorByName(t *testing.T) {
	cases := map[string]string{
		"wefr":          "WEFR",
		"WEFR":          "WEFR",
		"wefr-noupdate": "WEFR (No update)",
		"none":          "No feature selection",
		"pearson":       "Pearson",
		"spearman":      "Spearman",
		"jindex":        "J-index",
		"rf":            "Random Forest",
		"xgb":           "XGBoost",
	}
	for in, want := range cases {
		sel, err := selectorByName(in, 0.3, 1)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if sel.Name() != want {
			t.Errorf("selectorByName(%q).Name() = %q, want %q", in, sel.Name(), want)
		}
	}
	if _, err := selectorByName("bogus", 0.3, 1); err == nil {
		t.Error("bogus selector should fail")
	}
}

func TestSelectorByNamePercent(t *testing.T) {
	sel, err := selectorByName("pearson", 0.42, 1)
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := sel.(pipeline.SingleRanker)
	if !ok {
		t.Fatalf("selector type %T", sel)
	}
	if sr.Percent != 0.42 {
		t.Errorf("percent = %v", sr.Percent)
	}
}

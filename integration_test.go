package repro

// Cross-module integration tests: each exercises a full slice of the
// system rather than one package — simulator through CSV through WEFR,
// the planted failure signatures through the ensemble, and the updater
// over replayed fleet history.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/survival"
)

// TestCSVPipelineParity simulates a fleet, round-trips one model
// through the released-dataset CSV layout, and verifies WEFR selects
// the identical feature set from both sources.
func TestCSVPipelineParity(t *testing.T) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 700, Days: 240, Seed: 5, AFRScale: 6})
	if err != nil {
		t.Fatal(err)
	}
	direct := dataset.FleetSource{Fleet: fleet}

	var logBuf, ticketBuf bytes.Buffer
	if err := dataset.WriteModelCSV(&logBuf, direct, smart.MC1); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteTicketsCSV(&ticketBuf, direct, []smart.ModelID{smart.MC1}); err != nil {
		t.Fatal(err)
	}
	logs, err := dataset.ReadModelCSV(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tickets, err := dataset.ReadTicketsCSV(bytes.NewReader(ticketBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	logs.ApplyTickets(tickets)

	opts := dataset.FrameOpts{Model: smart.MC1, NegEvery: 15}
	frA, err := dataset.Frame(direct, opts)
	if err != nil {
		t.Fatal(err)
	}
	frB, err := dataset.Frame(logs, opts)
	if err != nil {
		t.Fatal(err)
	}
	selA, err := core.SelectFeatures(frA, core.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	selB, err := core.SelectFeatures(frB, core.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(selA.Features) != len(selB.Features) {
		t.Fatalf("selection sizes differ: %v vs %v", selA.Features, selB.Features)
	}
	for i := range selA.Features {
		if selA.Features[i] != selB.Features[i] {
			t.Fatalf("selection diverged after CSV round trip: %v vs %v", selA.Features, selB.Features)
		}
	}
}

// TestWEFRFindsPlantedSignatures verifies end to end — simulator,
// dataset layer, five rankers, outlier removal, complexity cutoff —
// that WEFR's selection contains each model's planted failure
// signature and excludes its planted trivial attributes.
func TestWEFRFindsPlantedSignatures(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	fleet, err := simulate.New(simulate.Config{TotalDrives: 4000, Seed: 6, AFRScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})

	// Per model: one attribute that must appear, one that must not.
	cases := []struct {
		model    smart.ModelID
		mustHave string
		mustNot  string
	}{
		{smart.MA1, "PLP", "PSC"},
		{smart.MB1, "ARS", "CEC"},
		{smart.MC1, "OCE", "ETE"},
		{smart.MC2, "UCE", "CEC"},
	}
	for _, tc := range cases {
		fr, err := dataset.Frame(src, dataset.FrameOpts{Model: tc.model, NegEvery: 25})
		if err != nil {
			t.Fatalf("%v: %v", tc.model, err)
		}
		sel, err := core.SelectFeatures(fr, core.Config{Seed: 6})
		if err != nil {
			t.Fatalf("%v: %v", tc.model, err)
		}
		var hasSig, hasTrivial bool
		for _, f := range sel.Features {
			if strings.HasPrefix(f, tc.mustHave) {
				hasSig = true
			}
			if strings.HasPrefix(f, tc.mustNot) {
				hasTrivial = true
			}
		}
		if !hasSig {
			t.Errorf("%v: signature %s_* missing from %v", tc.model, tc.mustHave, sel.Features)
		}
		if hasTrivial {
			t.Errorf("%v: trivial %s_* selected in %v", tc.model, tc.mustNot, sel.Features)
		}
	}
}

// TestUpdaterOverFleetHistory replays fleet history through the weekly
// updater and verifies the wear split eventually appears for a
// wear-failing model and the low group leans on wear features.
func TestUpdaterOverFleetHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	fleet, err := simulate.New(simulate.Config{TotalDrives: 4000, Seed: 7, AFRScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})
	model := smart.MC1
	u := core.NewUpdater(core.Config{Seed: 7}, 90)

	for day := 200; day < src.Days(); day += 90 {
		fr, err := dataset.Frame(src, dataset.FrameOpts{Model: model, DayHi: day, NegEvery: 40})
		if err != nil {
			t.Fatal(err)
		}
		if fr.Positives() == 0 {
			continue
		}
		curve, err := survival.ComputeAsOf(src, model, 0, day)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.Update(day, fr, curve); err != nil {
			t.Fatal(err)
		}
	}
	final, err := u.Current()
	if err != nil {
		t.Fatal(err)
	}
	if final.Split == nil {
		t.Fatal("updater never found the wear split for MC1")
	}
	lowHasWear := false
	for _, f := range final.Split.Low.Features {
		if strings.HasPrefix(f, "MWI") || strings.HasPrefix(f, "POH") {
			lowHasWear = true
		}
	}
	if !lowHasWear {
		t.Errorf("low group lacks wear features: %v", final.Split.Low.Features)
	}
	if len(u.History()) < 3 {
		t.Errorf("history = %d updates", len(u.History()))
	}
}

// TestCustomRankerInEnsemble verifies the public extension point: a
// user-defined ranker participates in the ensemble and an adversarial
// one is discarded by outlier removal (the examples/customranker
// scenario, asserted).
func TestCustomRankerInEnsemble(t *testing.T) {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 1500, Seed: 8, AFRScale: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.FleetSource{Fleet: fleet}
	fr, err := dataset.Frame(src, dataset.FrameOpts{Model: smart.MC1, NegEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	rankers := append(selection.DefaultRankers(8), reverseRanker{})
	sel, err := core.SelectFeatures(fr, core.Config{Rankers: rankers, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rep := range sel.Rankers {
		if rep.Name == "Reverse" {
			found = true
			if !rep.Outlier {
				t.Errorf("adversarial ranker survived (meanD %v)", rep.MeanDistance)
			}
		}
	}
	if !found {
		t.Fatal("custom ranker missing from reports")
	}
}

// reverseRanker ranks features in reverse column order — deliberately
// adversarial.
type reverseRanker struct{}

func (reverseRanker) Name() string { return "Reverse" }

func (reverseRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	n := fr.NumFeatures()
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i)
	}
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = float64(n - i)
	}
	return selection.Result{Scores: scores, Ranks: ranks}, nil
}

// Quickstart: simulate a small SSD fleet, run WEFR feature selection
// for one drive model, train the failure-prediction pipeline, and
// print drive-level accuracy — the whole library in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/pipeline"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/survival"
)

func main() {
	// 1. A fleet of 1200 SSDs across the six drive models, 24 months
	// of daily SMART logs, with failures densified 4x so a small fleet
	// still has signal.
	fleet, err := simulate.New(simulate.Config{TotalDrives: 1200, Seed: 42, AFRScale: 4})
	if err != nil {
		log.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})

	// 2. Build a learning frame for MC1 (raw + normalized value of
	// every SMART attribute the model reports) and the survival curve
	// WEFR uses for its wear-out split.
	fr, err := dataset.Frame(src, dataset.FrameOpts{Model: smart.MC1, NegEvery: 30})
	if err != nil {
		log.Fatal(err)
	}
	curve, err := survival.Compute(src, smart.MC1, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. WEFR: five ranking approaches, Kendall-tau outlier removal,
	// mean-rank aggregation, automatic feature count, wear-out split.
	res, err := core.Select(fr, curve, core.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WEFR selected %d of %d features: %v\n",
		res.Global.Count, fr.NumFeatures(), res.Global.Features)
	if res.Split != nil {
		fmt.Printf("wear split at MWI_N %.0f\n  low:  %v\n  high: %v\n",
			res.Split.ThresholdMWI, res.Split.Low.Features, res.Split.High.Features)
	}

	// 4. End-to-end prediction on the paper's final testing phase.
	phases := pipeline.StandardPhases(src.Days())
	result, err := pipeline.RunPhase(src, smart.MC1, pipeline.WEFR{}, phases[len(phases)-1], pipeline.Config{
		Forest:   forest.Config{NumTrees: 25, MaxDepth: 8, Seed: 42},
		NegEvery: 30,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntest phase: %s\n", result.Confusion)
}

// Customranker: extending WEFR with a user-defined feature-selection
// approach through the ranker registry. A deployment registers its
// criterion once (selection.Register) and then selects it by name in
// core.Config.RankerSpecs — exactly how the built-in approaches are
// wired — so the custom ranker also becomes addressable from every
// spec-driven surface (the -rankers CLI flags, the rank-eval harness).
// WEFR's Kendall-tau outlier removal automatically protects the
// ensemble from a ranker that turns out to be garbage — demonstrated
// here by adding both a sensible custom ranker (variance ratio,
// registered and selected by name) and an adversarial one
// (alphabetical order, passed as a raw Ranker instance).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/stats"
)

// VarianceRatioRanker scores a feature by the ratio of its variance in
// failed samples to its variance in healthy samples — a cheap custom
// criterion: error counters of failing drives have inflated spread.
type VarianceRatioRanker struct{}

var _ selection.Ranker = VarianceRatioRanker{}

// Name implements selection.Ranker.
func (VarianceRatioRanker) Name() string { return "VarianceRatio" }

// Rank implements selection.Ranker.
func (VarianceRatioRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	scores := make([]float64, fr.NumFeatures())
	labels := fr.Labels()
	for i := range scores {
		col := fr.Col(i)
		var pos, neg []float64
		for j, v := range col {
			if labels[j] == 1 {
				pos = append(pos, v)
			} else {
				neg = append(neg, v)
			}
		}
		_, vp, err := stats.MeanVariance(pos)
		if err != nil {
			return selection.Result{}, err
		}
		_, vn, err := stats.MeanVariance(neg)
		if err != nil {
			return selection.Result{}, err
		}
		scores[i] = vp / (vn + 1e-9)
	}
	return selection.Result{Scores: scores, Ranks: stats.ScoresToRanks(scores)}, nil
}

// AlphabeticalRanker ranks features by name — deliberately useless, to
// show the ensemble discarding it.
type AlphabeticalRanker struct{}

var _ selection.Ranker = AlphabeticalRanker{}

// Name implements selection.Ranker.
func (AlphabeticalRanker) Name() string { return "Alphabetical" }

// Rank implements selection.Ranker.
func (AlphabeticalRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	names := append([]string(nil), fr.Names()...)
	sort.Strings(names)
	pos := make(map[string]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	scores := make([]float64, fr.NumFeatures())
	for i, n := range fr.Names() {
		scores[i] = float64(len(names) - pos[n])
	}
	return selection.Result{Scores: scores, Ranks: stats.ScoresToRanks(scores)}, nil
}

func main() {
	// The third-party extension path: register the custom criterion
	// under a name, making it resolvable everywhere specs are.
	selection.Register("variance-ratio", func(selection.Params) selection.Ranker {
		return VarianceRatioRanker{}
	}, "vr")

	fleet, err := simulate.New(simulate.Config{TotalDrives: 1000, Seed: 3, AFRScale: 5})
	if err != nil {
		log.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})
	fr, err := dataset.Frame(src, dataset.FrameOpts{Model: smart.MC1, NegEvery: 40})
	if err != nil {
		log.Fatal(err)
	}

	// Run 1: the paper's five approaches plus the registered custom
	// criterion, selected purely by name — it joins the ensemble as a
	// peer.
	report(fr, "with VarianceRatio (a sensible custom ranker)",
		core.Config{
			RankerSpecs: append(selection.DefaultSpecs(), "variance-ratio"),
			Seed:        3,
		})

	// Run 2: the five approaches plus a garbage criterion — the
	// Kendall-tau robustness step discards it. (Note: outlier removal
	// flags *one* aberrant ranking reliably; several simultaneous
	// aberrant rankings inflate the deviation baseline and can shield
	// each other, which is why the two custom rankers are demonstrated
	// separately.) This one is passed as a raw Ranker instance — the
	// pre-registry extension path still works.
	report(fr, "with Alphabetical (an adversarial ranker)",
		core.Config{
			Rankers: append(selection.DefaultRankers(3), AlphabeticalRanker{}),
			Seed:    3,
		})
}

func report(fr *frame.Frame, title string, cfg core.Config) {
	sel, err := core.SelectFeatures(fr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble %s:\n", title)
	for _, rep := range sel.Rankers {
		status := "kept"
		if rep.Outlier {
			status = "DISCARDED as outlier"
		}
		fmt.Printf("  %-14s mean Kendall distance %6.1f  %s\n", rep.Name, rep.MeanDistance, status)
	}
	fmt.Printf("selected %d features: %v\n\n", sel.Count, sel.Features)
}

// Customranker: extending WEFR with a user-defined feature-selection
// approach. The core API accepts any selection.Ranker, so a deployment
// can add site-specific criteria to the ensemble; WEFR's Kendall-tau
// outlier removal automatically protects the ensemble from a ranker
// that turns out to be garbage — demonstrated here by adding both a
// sensible custom ranker (variance ratio) and an adversarial one
// (alphabetical order).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/frame"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/stats"
)

// VarianceRatioRanker scores a feature by the ratio of its variance in
// failed samples to its variance in healthy samples — a cheap custom
// criterion: error counters of failing drives have inflated spread.
type VarianceRatioRanker struct{}

var _ selection.Ranker = VarianceRatioRanker{}

// Name implements selection.Ranker.
func (VarianceRatioRanker) Name() string { return "VarianceRatio" }

// Rank implements selection.Ranker.
func (VarianceRatioRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	scores := make([]float64, fr.NumFeatures())
	labels := fr.Labels()
	for i := range scores {
		col := fr.Col(i)
		var pos, neg []float64
		for j, v := range col {
			if labels[j] == 1 {
				pos = append(pos, v)
			} else {
				neg = append(neg, v)
			}
		}
		_, vp, err := stats.MeanVariance(pos)
		if err != nil {
			return selection.Result{}, err
		}
		_, vn, err := stats.MeanVariance(neg)
		if err != nil {
			return selection.Result{}, err
		}
		scores[i] = vp / (vn + 1e-9)
	}
	return selection.Result{Scores: scores, Ranks: stats.ScoresToRanks(scores)}, nil
}

// AlphabeticalRanker ranks features by name — deliberately useless, to
// show the ensemble discarding it.
type AlphabeticalRanker struct{}

var _ selection.Ranker = AlphabeticalRanker{}

// Name implements selection.Ranker.
func (AlphabeticalRanker) Name() string { return "Alphabetical" }

// Rank implements selection.Ranker.
func (AlphabeticalRanker) Rank(fr *frame.Frame) (selection.Result, error) {
	names := append([]string(nil), fr.Names()...)
	sort.Strings(names)
	pos := make(map[string]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	scores := make([]float64, fr.NumFeatures())
	for i, n := range fr.Names() {
		scores[i] = float64(len(names) - pos[n])
	}
	return selection.Result{Scores: scores, Ranks: stats.ScoresToRanks(scores)}, nil
}

func main() {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 1000, Seed: 3, AFRScale: 5})
	if err != nil {
		log.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})
	fr, err := dataset.Frame(src, dataset.FrameOpts{Model: smart.MC1, NegEvery: 40})
	if err != nil {
		log.Fatal(err)
	}

	// Run 1: the paper's five approaches plus a sensible custom
	// criterion — it joins the ensemble as a peer.
	report(fr, "with VarianceRatio (a sensible custom ranker)",
		append(selection.DefaultRankers(3), VarianceRatioRanker{}))

	// Run 2: the five approaches plus a garbage criterion — the
	// Kendall-tau robustness step discards it. (Note: outlier removal
	// flags *one* aberrant ranking reliably; several simultaneous
	// aberrant rankings inflate the deviation baseline and can shield
	// each other, which is why the two custom rankers are demonstrated
	// separately.)
	report(fr, "with Alphabetical (an adversarial ranker)",
		append(selection.DefaultRankers(3), AlphabeticalRanker{}))
}

func report(fr *frame.Frame, title string, rankers []selection.Ranker) {
	sel, err := core.SelectFeatures(fr, core.Config{Rankers: rankers, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble %s:\n", title)
	for _, rep := range sel.Rankers {
		status := "kept"
		if rep.Outlier {
			status = "DISCARDED as outlier"
		}
		fmt.Printf("  %-14s mean Kendall distance %6.1f  %s\n", rep.Name, rep.MeanDistance, status)
	}
	fmt.Printf("selected %d features: %v\n\n", sel.Count, sel.Features)
}

// Fleetmonitor: the production-style deployment loop of Section IV-D.
// A core.Updater re-checks the survival change point weekly as the
// fleet wears out and refreshes the selected features per wear group;
// the example replays 24 months of fleet history and logs every point
// where the selection changed.
//
// This is the scenario the paper's "updating feature selection"
// component exists for: a young fleet has no wear signal, so WEFR
// starts with a single global feature set; as drives wear past the
// survival change point, the low-MWI group appears and its feature set
// shifts toward MWI/POH.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/survival"
)

func main() {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 1200, Seed: 7, AFRScale: 4})
	if err != nil {
		log.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})
	model := smart.MA1

	// Re-select every 90 days over the fleet's life. (The paper
	// re-checks weekly; a quarterly cadence keeps this example fast
	// while exercising the identical code path.)
	updater := core.NewUpdater(core.Config{Seed: 7}, 90)

	for day := 180; day < src.Days(); day += 90 {
		// Use only history available at this day: frames and survival
		// curve end at `day`.
		fr, err := dataset.Frame(src, dataset.FrameOpts{
			Model: model, DayHi: day, NegEvery: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		if fr.Positives() == 0 {
			continue // no failures yet; nothing to learn from
		}
		curve, err := survival.ComputeAsOf(src, model, 0, day)
		if err != nil {
			log.Fatal(err)
		}
		ran, err := updater.Update(day, fr, curve)
		if err != nil {
			log.Fatal(err)
		}
		if !ran {
			continue
		}
		hist := updater.History()
		ev := hist[len(hist)-1]
		if !ev.Changed {
			continue
		}
		fmt.Printf("day %3d: selection changed\n", day)
		fmt.Printf("  global (%d): %v\n", ev.Result.Global.Count, ev.Result.Global.Features)
		if ev.Result.Split != nil {
			fmt.Printf("  wear split at MWI_N %.0f\n", ev.Result.Split.ThresholdMWI)
			fmt.Printf("    low:  %v\n", ev.Result.Split.Low.Features)
			fmt.Printf("    high: %v\n", ev.Result.Split.High.Features)
		}
	}

	// The monitor answers "which features should score this drive
	// right now?" by wear level.
	final, err := updater.Current()
	if err != nil {
		log.Fatal(err)
	}
	for _, mwi := range []float64{95, 50, 15} {
		fmt.Printf("\ndrive at MWI_N %.0f uses: %v", mwi, final.FeaturesFor(mwi))
	}
	fmt.Println()
}

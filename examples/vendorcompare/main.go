// Vendorcompare: the heterogeneity study that motivates WEFR
// (Section III-B). For every drive model, the example ranks features
// with each of the five preliminary approaches and shows (a) that the
// top-5 lists disagree across approaches and across models, and
// (b) that WEFR's ensemble lands on each model's planted failure
// signature without per-model tuning.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/selection"
	"repro/internal/simulate"
	"repro/internal/smart"
	"repro/internal/textplot"
)

func main() {
	fleet, err := simulate.New(simulate.Config{TotalDrives: 1200, Seed: 11, AFRScale: 4})
	if err != nil {
		log.Fatal(err)
	}
	src := dataset.NewCachedSource(dataset.FleetSource{Fleet: fleet})

	for _, model := range smart.AllModels() {
		fr, err := dataset.Frame(src, dataset.FrameOpts{Model: model, NegEvery: 50})
		if err != nil {
			log.Fatal(err)
		}
		if fr.Positives() < 5 {
			fmt.Printf("%v: too few failures in this small fleet, skipping\n\n", model)
			continue
		}

		// Per-approach top-5 (the Table IV view, for every model).
		header := []string{"Rank"}
		tops := make([][]string, 5)
		for _, rk := range selection.DefaultRankers(11) {
			res, err := rk.Rank(fr)
			if err != nil {
				log.Fatal(err)
			}
			header = append(header, rk.Name())
			for i, f := range res.TopN(5) {
				tops[i] = append(tops[i], fr.Names()[f])
			}
		}
		var rows [][]string
		for i, t := range tops {
			rows = append(rows, append([]string{fmt.Sprintf("%d", i+1)}, t...))
		}
		fmt.Printf("%v (%d samples, %d positive)\n", model, fr.NumRows(), fr.Positives())
		fmt.Print(textplot.Table(header, rows))

		// WEFR's ensemble answer.
		sel, err := core.SelectFeatures(fr, core.Config{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		var discarded []string
		for _, rep := range sel.Rankers {
			if rep.Outlier {
				discarded = append(discarded, rep.Name)
			}
		}
		fmt.Printf("WEFR: %d features %v", sel.Count, sel.Features)
		if len(discarded) > 0 {
			fmt.Printf(" (discarded rankings: %v)", discarded)
		}
		fmt.Print("\n\n")
	}
}

// Package repro is a from-scratch Go reproduction of "General Feature
// Selection for Failure Prediction in Large-scale SSD Deployment"
// (Xu, Han, Lee, Liu, He, Liu — DSN 2021): WEFR, Wear-out-updating
// Ensemble Feature Ranking, together with every substrate it needs —
// the statistics, the tree learners (Random Forest and an
// XGBoost-style GBDT), the data-complexity measures, a Bayesian
// change-point detector, the offline failure-prediction pipeline, and
// a parametric simulator of the six-drive-model production fleet the
// paper evaluates on.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per table and figure of the paper's evaluation. The
// implementation lives under internal/ (see DESIGN.md for the map);
// runnable entry points are cmd/experiments, cmd/wefr, cmd/predict,
// cmd/ssdgen, and the examples/ directory.
package repro
